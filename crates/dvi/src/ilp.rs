//! The literal ILP formulation of TPL-aware DVI (paper §III-E,
//! constraints C1–C8), emitted into the [`bilp`] solver.
//!
//! Per single via `i`: binary color indicators `oV_i`, `gV_i`, `bV_i`
//! and the uncolorable indicator `uV_i`. Per feasible candidate
//! `DVIC_j` of via `i`: the insertion variable `D_ij` and its color
//! indicators `oD_ij`, `gD_ij`, `bD_ij`.
//!
#![allow(clippy::needless_range_loop)]
//! Objective: `maximize Σ D_ij − B·Σ uV_i` with `B` larger than the
//! total candidate count, so avoiding a single uncolorable via always
//! dominates any number of insertions.

use std::time::Instant;

use bilp::{Model, Sense, Solution, SolveOptions, VarId};
use tpl_decomp::vias_conflict;

use crate::candidates::DviProblem;
use crate::heuristic::{solve_heuristic, DviParams};
use crate::report::DviOutcome;

/// Mapping between problem entities and ILP variables, used to decode
/// solutions and build warm starts.
#[derive(Debug, Clone)]
pub struct IlpMapping {
    /// `[oV, gV, bV, uV]` per via.
    pub via_vars: Vec<[VarId; 4]>,
    /// `[D, oD, gD, bD]` per candidate.
    pub cand_vars: Vec<[VarId; 4]>,
}

/// Options for [`solve_ilp`].
#[derive(Debug, Clone, Default)]
pub struct IlpOptions {
    /// Time limit handed to the branch-and-bound solver.
    pub time_limit: Option<std::time::Duration>,
    /// Warm-start the solver from the heuristic solution (recommended
    /// for large instances; the paper's ILP runs cold).
    pub warm_start: bool,
}

/// Builds the C1–C8 model for a DVI problem.
pub fn build_ilp(problem: &DviProblem) -> (Model, IlpMapping) {
    let mut m = Model::maximize();
    let n_vias = problem.via_count();
    let n_cands = problem.candidates().len();
    let big_b: i64 = n_cands as i64 + 1;
    const BIG_B2: i64 = 3;

    let via_vars: Vec<[VarId; 4]> = (0..n_vias)
        .map(|_| [m.add_var(), m.add_var(), m.add_var(), m.add_var()])
        .collect();
    let cand_vars: Vec<[VarId; 4]> = (0..n_cands)
        .map(|_| [m.add_var(), m.add_var(), m.add_var(), m.add_var()])
        .collect();

    // Objective: maximize insertions, heavily penalize uncolorable.
    for cv in &cand_vars {
        m.set_objective_coeff(cv[0], 1);
    }
    for vv in &via_vars {
        m.set_objective_coeff(vv[3], -big_b);
    }

    // C1: at most one redundant via per single via.
    for pv in problem.vias() {
        if !pv.candidates.is_empty() {
            m.add_constraint(
                pv.candidates.iter().map(|&c| (cand_vars[c as usize][0], 1)),
                Sense::Le,
                1,
            );
        }
    }

    // C2: conflicting candidates are mutually exclusive.
    for &(a, b) in problem.conflicts() {
        m.add_constraint(
            [(cand_vars[a as usize][0], 1), (cand_vars[b as usize][0], 1)],
            Sense::Le,
            1,
        );
    }

    // C3: every via takes exactly one of {orange, green, blue,
    // uncolorable}.
    for vv in &via_vars {
        m.add_constraint(
            [(vv[0], 1), (vv[1], 1), (vv[2], 1), (vv[3], 1)],
            Sense::Eq,
            1,
        );
    }

    // C4: an inserted redundant via takes exactly one color; an
    // uninserted one is unconstrained.
    for cv in &cand_vars {
        // oD + gD + bD - B'(D-1) >= 1  ==  oD+gD+bD - B'·D >= 1 - B'
        m.add_constraint(
            [(cv[1], 1), (cv[2], 1), (cv[3], 1), (cv[0], -BIG_B2)],
            Sense::Ge,
            1 - BIG_B2,
        );
        // oD + gD + bD + B'(D-1) <= 1  ==  oD+gD+bD + B'·D <= 1 + B'
        m.add_constraint(
            [(cv[1], 1), (cv[2], 1), (cv[3], 1), (cv[0], BIG_B2)],
            Sense::Le,
            1 + BIG_B2,
        );
    }

    // Spatial index of vias per layer for C5/C6 lookups.
    let mut via_at: std::collections::HashMap<(u8, i32, i32), u32> =
        std::collections::HashMap::new();
    for (i, pv) in problem.vias().iter().enumerate() {
        via_at.insert((pv.via.below, pv.via.x, pv.via.y), i as u32);
    }

    // C5: existing vias within the same-color pitch take different
    // colors.
    for (i, pv) in problem.vias().iter().enumerate() {
        for (dx, dy) in tpl_decomp::conflict_offsets() {
            if let Some(&j) = via_at.get(&(pv.via.below, pv.via.x + dx, pv.via.y + dy)) {
                if (j as usize) > i {
                    for color in 0..3 {
                        m.add_constraint(
                            [(via_vars[i][color], 1), (via_vars[j as usize][color], 1)],
                            Sense::Le,
                            1,
                        );
                    }
                }
            }
        }
    }

    // C6: an existing via and an inserted redundant via within pitch
    // take different colors (only binding when D = 1).
    for (c, cand) in problem.candidates().iter().enumerate() {
        for dx in -2..=2 {
            for dy in -2..=2 {
                if !vias_conflict(dx, dy) {
                    continue;
                }
                if let Some(&i) = via_at.get(&(cand.via_layer, cand.loc.0 + dx, cand.loc.1 + dy)) {
                    for color in 0..3 {
                        // oV_i + oD + B'(D-1) <= 1
                        m.add_constraint(
                            [
                                (via_vars[i as usize][color], 1),
                                (cand_vars[c][color + 1], 1),
                                (cand_vars[c][0], BIG_B2),
                            ],
                            Sense::Le,
                            1 + BIG_B2,
                        );
                    }
                }
            }
        }
    }

    // C7: two inserted redundant vias within pitch take different
    // colors. Index candidates by location for the lookup.
    let cands_at = problem.candidate_loc_index();
    for (a, ca) in problem.candidates().iter().enumerate() {
        for dx in -2..=2 {
            for dy in -2..=2 {
                if !vias_conflict(dx, dy) {
                    continue;
                }
                for b in cands_at.at(ca.via_layer, ca.loc.0 + dx, ca.loc.1 + dy) {
                    if (b as usize) <= a || ca.via_idx == problem.candidates()[b as usize].via_idx {
                        continue;
                    }
                    for color in 0..3 {
                        // oD_a + oD_b + B'(D_a + D_b - 2) <= 1
                        m.add_constraint(
                            [
                                (cand_vars[a][color + 1], 1),
                                (cand_vars[b as usize][color + 1], 1),
                                (cand_vars[a][0], BIG_B2),
                                (cand_vars[b as usize][0], BIG_B2),
                            ],
                            Sense::Le,
                            1 + 2 * BIG_B2,
                        );
                    }
                }
            }
        }
    }

    (
        m,
        IlpMapping {
            via_vars,
            cand_vars,
        },
    )
}

/// Solves the TPL-aware DVI problem by the ILP formulation.
///
/// Returns the decoded outcome plus the raw solver solution (for
/// status / gap inspection).
pub fn solve_ilp(problem: &DviProblem, options: &IlpOptions) -> (DviOutcome, Solution) {
    let start = Instant::now();
    let (model, mapping) = build_ilp(problem);
    let mut solve_opts = SolveOptions {
        time_limit: options.time_limit,
        warm_start: None,
    };
    if options.warm_start {
        let heur = solve_heuristic(problem, &DviParams::default());
        solve_opts.warm_start = Some(warm_start_vector(&mapping, &model, &heur));
    }
    let sol = model.solve(&solve_opts);
    let outcome = decode(problem, &mapping, &sol, start);
    (outcome, sol)
}

/// [`solve_ilp`] wrapped in a [`sadp_trace::Phase::Dvi`] span.
pub fn solve_ilp_observed(
    problem: &DviProblem,
    options: &IlpOptions,
    obs: &mut impl sadp_trace::RouteObserver,
) -> (DviOutcome, Solution) {
    use sadp_trace::Phase;
    obs.phase_start(Phase::Dvi);
    let (outcome, sol) = solve_ilp(problem, options);
    outcome.emit_counters(obs);
    obs.phase_end(Phase::Dvi);
    (outcome, sol)
}

/// Builds a full feasible assignment from a heuristic outcome.
fn warm_start_vector(mapping: &IlpMapping, model: &Model, heur: &DviOutcome) -> Vec<bool> {
    let mut values = vec![false; model.var_count()];
    for (i, color) in heur.via_colors.iter().enumerate() {
        let slot = match color {
            Some(c) => *c as usize,
            None => 3,
        };
        values[mapping.via_vars[i][slot].index()] = true;
    }
    for (k, &cand) in heur.inserted.iter().enumerate() {
        values[mapping.cand_vars[cand as usize][0].index()] = true;
        let c = heur.inserted_colors[k] as usize;
        values[mapping.cand_vars[cand as usize][c + 1].index()] = true;
    }
    values
}

fn decode(
    problem: &DviProblem,
    mapping: &IlpMapping,
    sol: &Solution,
    start: Instant,
) -> DviOutcome {
    let mut inserted = Vec::new();
    let mut inserted_colors = Vec::new();
    for (c, cv) in mapping.cand_vars.iter().enumerate() {
        if sol.values[cv[0].index()] {
            inserted.push(c as u32);
            let color = (0..3).find(|&k| sol.values[cv[k + 1].index()]).unwrap_or(0) as u8;
            inserted_colors.push(color);
        }
    }
    let mut via_colors = Vec::with_capacity(problem.via_count());
    let mut uncolorable = 0usize;
    for vv in &mapping.via_vars {
        if sol.values[vv[3].index()] {
            uncolorable += 1;
            via_colors.push(None);
        } else {
            let color = (0..3).find(|&k| sol.values[vv[k].index()]).unwrap_or(0);
            via_colors.push(Some(color as u8));
        }
    }
    DviOutcome {
        dead_via_count: problem.via_count() - inserted.len(),
        inserted,
        via_colors,
        inserted_colors,
        uncolorable_count: uncolorable,
        runtime: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_grid::{
        Axis, Net, NetId, Netlist, Pin, RoutedNet, RoutingGrid, RoutingSolution, SadpKind, Via,
        WireEdge,
    };

    fn straight_net_solution(n_vias: i32, spacing: i32) -> RoutingSolution {
        // A chain of nets, each a horizontal M2 wire with two pin
        // vias, spaced vertically.
        let mut nl = Netlist::new();
        for k in 0..n_vias {
            nl.push(Net::new(
                format!("n{k}"),
                vec![Pin::new(4, 4 + k * spacing), Pin::new(9, 4 + k * spacing)],
            ));
        }
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(20, 40), &nl);
        for k in 0..n_vias {
            let y = 4 + k * spacing;
            let edges = (4..9)
                .map(|x| WireEdge::new(1, x, y, Axis::Horizontal))
                .collect();
            sol.set_route(
                NetId(k as u32),
                RoutedNet::new(edges, vec![Via::new(0, 4, y), Via::new(0, 9, y)]),
            );
        }
        sol
    }

    #[test]
    fn ilp_protects_all_isolated_vias() {
        let sol = straight_net_solution(2, 8);
        let p = DviProblem::build(SadpKind::Sim, &sol);
        let (outcome, raw) = solve_ilp(&p, &IlpOptions::default());
        assert!(raw.is_optimal());
        assert_eq!(outcome.dead_via_count, 0);
        assert_eq!(outcome.inserted_count(), p.via_count());
        assert_eq!(outcome.uncolorable_count, 0);
    }

    #[test]
    fn ilp_solution_satisfies_model() {
        let sol = straight_net_solution(3, 4);
        let p = DviProblem::build(SadpKind::Sim, &sol);
        let (model, mapping) = build_ilp(&p);
        let bsol = model.solve(&SolveOptions::default());
        assert!(model.is_feasible(&bsol.values));
        // Every via has exactly one color slot set.
        for vv in &mapping.via_vars {
            let set = vv.iter().filter(|v| bsol.values[v.index()]).count();
            assert_eq!(set, 1);
        }
    }

    #[test]
    fn ilp_respects_c1() {
        let sol = straight_net_solution(1, 4);
        let p = DviProblem::build(SadpKind::Sim, &sol);
        let (outcome, _) = solve_ilp(&p, &IlpOptions::default());
        // Each via gets at most one redundant via.
        let mut per_via = vec![0usize; p.via_count()];
        for &c in &outcome.inserted {
            per_via[p.candidates()[c as usize].via_idx as usize] += 1;
        }
        assert!(per_via.iter().all(|&k| k <= 1));
    }

    #[test]
    fn warm_start_matches_cold_optimum() {
        let sol = straight_net_solution(3, 6);
        let p = DviProblem::build(SadpKind::Sim, &sol);
        let (cold, raw_cold) = solve_ilp(&p, &IlpOptions::default());
        let (warm, raw_warm) = solve_ilp(
            &p,
            &IlpOptions {
                warm_start: true,
                ..IlpOptions::default()
            },
        );
        assert!(raw_cold.is_optimal() && raw_warm.is_optimal());
        assert_eq!(cold.inserted_count(), warm.inserted_count());
        assert_eq!(cold.uncolorable_count, warm.uncolorable_count);
    }

    #[test]
    fn colors_of_inserted_vias_are_proper() {
        let sol = straight_net_solution(2, 3);
        let p = DviProblem::build(SadpKind::Sim, &sol);
        let (outcome, raw) = solve_ilp(&p, &IlpOptions::default());
        assert!(raw.is_optimal());
        // Check pairwise TPL conflicts among all final vias.
        let mut all: Vec<((u8, i32, i32), u8)> = Vec::new();
        for (i, pv) in p.vias().iter().enumerate() {
            if let Some(c) = outcome.via_colors[i] {
                all.push(((pv.via.below, pv.via.x, pv.via.y), c));
            }
        }
        for (k, &ci) in outcome.inserted.iter().enumerate() {
            let cand = &p.candidates()[ci as usize];
            all.push((
                (cand.via_layer, cand.loc.0, cand.loc.1),
                outcome.inserted_colors[k],
            ));
        }
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                let ((la, xa, ya), ca) = all[i];
                let ((lb, xb, yb), cb) = all[j];
                if la == lb && vias_conflict(xb - xa, yb - ya) {
                    assert_ne!(ca, cb, "{:?} vs {:?}", all[i], all[j]);
                }
            }
        }
    }
}
