//! Budget-guarded DVI solving with graceful degradation.
//!
//! The ILP solvers are the optimality references, but on a wall-clock
//! budget they can time out without a proven-optimal solution — and a
//! solver bug (or an injected fault) must never take the whole
//! routing session down. [`solve_resilient`] wraps the chosen solver
//! so that:
//!
//! * a panic inside the solver is contained;
//! * a time-limited ILP that could not prove optimality, and the
//!   `dvi.solver_abort` failpoint, *degrade* to the improved
//!   heuristic (Algorithm 3 + 1-swap) instead of failing;
//! * which solver actually produced the result — and why a fallback
//!   happened — is recorded on the observer as the `dvi_solver` /
//!   `dvi_fallback` notes, so a run report shows the substitution.
//!
//! Only when the heuristic fallback itself fails does the call return
//! a structured [`RouteError::Solver`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use sadp_grid::RouteError;
use sadp_trace::{Phase, RouteObserver};

use crate::candidates::DviProblem;
use crate::heuristic::{solve_heuristic_improved, DviParams};
use crate::ilp::{solve_ilp, IlpOptions};
use crate::ilp_lazy::{solve_ilp_lazy, LazyIlpOptions};
use crate::report::DviOutcome;

/// Failpoint name: when armed, the chosen ILP solver "aborts" and the
/// call degrades to the heuristic.
const FAILPOINT_SOLVER_ABORT: &str = "dvi.solver_abort";

/// Which DVI solver to run (or which one produced a result).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DviSolver {
    /// The monolithic C1–C8 ILP ([`solve_ilp`]).
    Ilp,
    /// The lazy-cut ILP decomposition ([`solve_ilp_lazy`]).
    IlpLazy,
    /// The improved priority-queue heuristic
    /// ([`solve_heuristic_improved`]).
    Heuristic,
}

impl DviSolver {
    /// Stable lowercase name used in reports and notes.
    pub fn name(self) -> &'static str {
        match self {
            DviSolver::Ilp => "ilp",
            DviSolver::IlpLazy => "ilp_lazy",
            DviSolver::Heuristic => "heuristic",
        }
    }
}

impl std::fmt::Display for DviSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Options for [`solve_resilient`].
#[derive(Debug, Clone)]
pub struct ResilientDviOptions {
    /// Preferred solver. [`DviSolver::Heuristic`] runs directly (it
    /// cannot time out).
    pub solver: DviSolver,
    /// Wall-clock budget handed to an ILP solver. An ILP that exhausts
    /// it without a proven-optimal solution degrades to the heuristic.
    pub time_limit: Option<Duration>,
    /// Parameters for the heuristic (both as the preferred solver and
    /// as the fallback).
    pub params: DviParams,
}

impl Default for ResilientDviOptions {
    fn default() -> Self {
        ResilientDviOptions {
            solver: DviSolver::IlpLazy,
            time_limit: None,
            params: DviParams::default(),
        }
    }
}

/// What [`solve_resilient`] produced and how.
#[derive(Debug, Clone)]
pub struct ResilientDviResult {
    /// The DVI outcome (from the preferred solver or the fallback).
    pub outcome: DviOutcome,
    /// The solver that actually produced `outcome`.
    pub solver_used: DviSolver,
    /// Why the preferred solver was substituted, when it was.
    pub fallback_reason: Option<String>,
}

impl ResilientDviResult {
    /// `true` when the preferred solver was substituted.
    pub fn degraded(&self) -> bool {
        self.fallback_reason.is_some()
    }
}

/// Runs a preferred solver outcome-or-reason: `Ok` is the outcome,
/// `Err` the human-readable reason the fallback must take over.
fn run_preferred(
    problem: &DviProblem,
    options: &ResilientDviOptions,
) -> Result<DviOutcome, String> {
    if faultinject::should_fail(FAILPOINT_SOLVER_ABORT) {
        return Err(format!("fault injected: {FAILPOINT_SOLVER_ABORT}"));
    }
    match options.solver {
        DviSolver::Heuristic => {
            // Not a fallback: the caller asked for the heuristic.
            catch_unwind(AssertUnwindSafe(|| {
                solve_heuristic_improved(problem, &options.params)
            }))
            .map_err(|p| format!("heuristic solver panicked: {}", panic_text(p.as_ref())))
        }
        DviSolver::Ilp => {
            let ilp_options = IlpOptions {
                time_limit: options.time_limit,
                warm_start: true,
            };
            let run = catch_unwind(AssertUnwindSafe(|| solve_ilp(problem, &ilp_options)))
                .map_err(|p| format!("ilp solver panicked: {}", panic_text(p.as_ref())))?;
            let (outcome, solution) = run;
            if solution.is_optimal() {
                Ok(outcome)
            } else {
                Err("ilp time limit exhausted without proven optimum".to_string())
            }
        }
        DviSolver::IlpLazy => {
            let lazy_options = LazyIlpOptions {
                time_limit: options.time_limit,
                ..LazyIlpOptions::default()
            };
            let run = catch_unwind(AssertUnwindSafe(|| solve_ilp_lazy(problem, &lazy_options)))
                .map_err(|p| format!("lazy ilp solver panicked: {}", panic_text(p.as_ref())))?;
            let (outcome, stats) = run;
            if stats.proven_optimal {
                Ok(outcome)
            } else {
                Err("lazy ilp budget exhausted without proven optimum".to_string())
            }
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Solves TPL-aware DVI with the preferred solver, degrading to
/// [`solve_heuristic_improved`] when the preferred solver panics,
/// exhausts its time budget without a proven optimum, or is aborted
/// by the `dvi.solver_abort` failpoint.
///
/// Runs inside a [`Phase::Dvi`] observer span; the producing solver is
/// recorded as the `dvi_solver` note and, on degradation, the cause as
/// the `dvi_fallback` note.
///
/// # Errors
///
/// [`RouteError::Solver`] only when the heuristic fallback itself
/// panics — there is no further fallback.
pub fn solve_resilient(
    problem: &DviProblem,
    options: &ResilientDviOptions,
    obs: &mut impl RouteObserver,
) -> Result<ResilientDviResult, RouteError> {
    obs.phase_start(Phase::Dvi);
    let result = match run_preferred(problem, options) {
        Ok(outcome) => Ok(ResilientDviResult {
            outcome,
            solver_used: options.solver,
            fallback_reason: None,
        }),
        Err(reason) if options.solver == DviSolver::Heuristic => {
            // The heuristic has no fallback.
            Err(RouteError::Solver {
                solver: DviSolver::Heuristic.name().to_string(),
                reason,
            })
        }
        Err(reason) => catch_unwind(AssertUnwindSafe(|| {
            solve_heuristic_improved(problem, &options.params)
        }))
        .map(|outcome| ResilientDviResult {
            outcome,
            solver_used: DviSolver::Heuristic,
            fallback_reason: Some(reason),
        })
        .map_err(|p| RouteError::Solver {
            solver: DviSolver::Heuristic.name().to_string(),
            reason: format!("fallback heuristic panicked: {}", panic_text(p.as_ref())),
        }),
    };
    if let Ok(r) = &result {
        obs.note("dvi_solver", r.solver_used.name());
        if let Some(reason) = &r.fallback_reason {
            obs.note("dvi_fallback", reason);
        }
        r.outcome.emit_counters(obs);
    }
    obs.phase_end(Phase::Dvi);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_grid::{
        Axis, Net, NetId, Netlist, Pin, RoutedNet, RoutingGrid, RoutingSolution, SadpKind, Via,
        WireEdge,
    };
    use sadp_trace::{JsonReport, NoopObserver};

    fn tiny_problem() -> DviProblem {
        let mut nl = Netlist::new();
        nl.push(Net::new("a", vec![Pin::new(2, 2), Pin::new(5, 2)]));
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(16, 16), &nl);
        sol.set_route(
            NetId(0),
            RoutedNet::new(
                vec![
                    WireEdge::new(1, 2, 2, Axis::Horizontal),
                    WireEdge::new(1, 3, 2, Axis::Horizontal),
                    WireEdge::new(1, 4, 2, Axis::Horizontal),
                ],
                vec![Via::new(0, 2, 2), Via::new(0, 5, 2)],
            ),
        );
        DviProblem::build(SadpKind::Sim, &sol)
    }

    #[test]
    fn preferred_solver_is_reported_without_fallback() {
        let problem = tiny_problem();
        for solver in [DviSolver::Ilp, DviSolver::IlpLazy, DviSolver::Heuristic] {
            let options = ResilientDviOptions {
                solver,
                ..ResilientDviOptions::default()
            };
            let r = solve_resilient(&problem, &options, &mut NoopObserver)
                .unwrap_or_else(|e| panic!("{solver}: {e}"));
            assert_eq!(r.solver_used, solver);
            assert!(!r.degraded());
        }
    }

    #[test]
    fn zero_time_limit_degrades_to_heuristic_and_notes_it() {
        let problem = tiny_problem();
        let options = ResilientDviOptions {
            solver: DviSolver::IlpLazy,
            time_limit: Some(Duration::ZERO),
            ..ResilientDviOptions::default()
        };
        let mut report = JsonReport::new("dvi");
        let r = solve_resilient(&problem, &options, &mut report).expect("fallback must succeed");
        assert_eq!(r.solver_used, DviSolver::Heuristic);
        assert!(r.degraded());
        assert_eq!(report.note_value("dvi_solver"), Some("heuristic"));
        assert!(report.note_value("dvi_fallback").is_some());
        // The fallback still solves the instance.
        assert_eq!(r.outcome.inserted_count(), 2);
    }

    #[test]
    fn heuristic_matches_direct_call() {
        let problem = tiny_problem();
        let direct = solve_heuristic_improved(&problem, &DviParams::default());
        let options = ResilientDviOptions {
            solver: DviSolver::Heuristic,
            ..ResilientDviOptions::default()
        };
        let r = solve_resilient(&problem, &options, &mut NoopObserver).expect("heuristic runs");
        assert_eq!(r.outcome.inserted, direct.inserted);
        assert_eq!(r.outcome.uncolorable_count, direct.uncolorable_count);
    }

    #[test]
    fn solver_names_are_stable() {
        assert_eq!(DviSolver::Ilp.name(), "ilp");
        assert_eq!(DviSolver::IlpLazy.to_string(), "ilp_lazy");
        assert_eq!(DviSolver::Heuristic.name(), "heuristic");
    }
}
