//! Lazy-cut ILP solver for TPL-aware DVI.
//!
//! The literal C1–C8 model ties every via of a layer into one giant
//! branch-and-bound component through the color indicator variables,
//! which makes proving optimality hopeless at realistic sizes (the
//! paper's Gurobi runs take 1500–6500 s on circuits of this scale).
//! This solver uses the classic remedy — delayed constraint
//! generation:
//!
//! 1. solve the **insertion relaxation** exactly: variables `D_ij`
//!    only, constraints C1 (one redundant via per single via) and C2
//!    (conflicting candidates) plus all cuts accumulated so far; its
//!    optimum is an upper bound on the full model's, because every
//!    C1–C8-feasible insertion set is feasible here;
//! 2. check the proposed insertion set for TPL feasibility: no FVP in
//!    any 3×3 window and a 3-colorable decomposition graph per via
//!    layer (Welsh–Powell, with exact backtracking on small failing
//!    components);
//! 3. on a violation, add a *no-good cut* — at most `|T| − 1` of the
//!    inserted candidates `T` involved in the violating window or
//!    component — and re-solve.
//!
//! The loop terminates (each cut excludes at least one assignment);
//! on success the result is optimal up to the exactness of the
//! coloring check (components larger than
//! [`EXACT_COLORING_LIMIT`] fall back to Welsh–Powell, which may
//! over-cut — in practice such components do not survive the router's
//! TPL phase). Uncolorable components that contain *no* inserted
//! candidate are pre-existing layout defects: their vias are counted
//! in `#UV` and excluded from further checks, matching the ILP's
//! `uV` semantics.

use std::time::{Duration, Instant};

use bilp::{Model, Sense, SolveOptions, SolveStatus, VarId};
use tpl_decomp::{exact_color, welsh_powell, DecompGraph, FvpIndex};

use crate::candidates::DviProblem;
use crate::heuristic::{solve_heuristic, DviParams};
use crate::report::DviOutcome;

/// Components up to this size are checked by exact backtracking when
/// the greedy coloring fails.
pub const EXACT_COLORING_LIMIT: usize = 32;

/// Options for [`solve_ilp_lazy`].
#[derive(Debug, Clone)]
pub struct LazyIlpOptions {
    /// Total wall-clock budget across all rounds.
    pub time_limit: Option<Duration>,
    /// Maximum cut-generation rounds.
    pub max_rounds: usize,
}

impl Default for LazyIlpOptions {
    fn default() -> Self {
        LazyIlpOptions {
            time_limit: None,
            max_rounds: 50,
        }
    }
}

/// Statistics of a lazy-cut solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct LazyStats {
    /// Cut-generation rounds executed.
    pub rounds: usize,
    /// Cuts added in total.
    pub cuts: usize,
    /// `true` when the final relaxation was solved to optimality and
    /// needed no further cuts.
    pub proven_optimal: bool,
    /// Upper bound on the number of insertable redundant vias.
    pub best_bound: i64,
}

/// [`solve_ilp_lazy`] wrapped in a [`sadp_trace::Phase::Dvi`] span:
/// the observer also receives the cut-round count as
/// [`sadp_trace::Counter::Iterations`].
pub fn solve_ilp_lazy_observed(
    problem: &DviProblem,
    options: &LazyIlpOptions,
    obs: &mut impl sadp_trace::RouteObserver,
) -> (DviOutcome, LazyStats) {
    use sadp_trace::{Counter, Phase};
    obs.phase_start(Phase::Dvi);
    let (outcome, stats) = solve_ilp_lazy(problem, options);
    outcome.emit_counters(obs);
    obs.counter(Phase::Dvi, Counter::Iterations, stats.rounds as i64);
    obs.phase_end(Phase::Dvi);
    (outcome, stats)
}

/// Solves TPL-aware DVI by the lazy-cut decomposition.
pub fn solve_ilp_lazy(problem: &DviProblem, options: &LazyIlpOptions) -> (DviOutcome, LazyStats) {
    let start = Instant::now();
    let deadline = options.time_limit.map(|d| start + d);

    // Base model: D variables, C1, C2.
    let mut model = Model::maximize();
    let d_vars: Vec<VarId> = problem
        .candidates()
        .iter()
        .map(|_| model.add_var())
        .collect();
    for &v in &d_vars {
        model.set_objective_coeff(v, 1);
    }
    for pv in problem.vias() {
        if pv.candidates.len() > 1 {
            model.add_constraint(
                pv.candidates.iter().map(|&c| (d_vars[c as usize], 1)),
                Sense::Le,
                1,
            );
        }
    }
    for &(a, b) in problem.conflicts() {
        model.add_constraint(
            [(d_vars[a as usize], 1), (d_vars[b as usize], 1)],
            Sense::Le,
            1,
        );
    }

    // Warm start from the heuristic.
    let heur = solve_heuristic(problem, &DviParams::default());
    let mut warm = vec![false; d_vars.len()];
    for &c in &heur.inserted {
        warm[c as usize] = true;
    }

    // Vias in pre-existing uncolorable components (counted as #UV and
    // excluded from coloring checks).
    let mut dead_existing: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut stats = LazyStats::default();
    let mut last_solution: Vec<u32> = heur.inserted.clone();
    let mut proven = false;

    for round in 0..options.max_rounds {
        stats.rounds = round + 1;
        let remaining = deadline.map(|dl| dl.saturating_duration_since(Instant::now()));
        if matches!(remaining, Some(d) if d.is_zero()) {
            break;
        }
        let sol = model.solve(&SolveOptions {
            time_limit: remaining,
            warm_start: Some(warm.clone()),
        });
        if sol.status == SolveStatus::Infeasible || sol.status == SolveStatus::Unknown {
            break;
        }
        stats.best_bound = sol.best_bound;
        let inserted: Vec<u32> = (0..d_vars.len() as u32)
            .filter(|&c| sol.values[c as usize])
            .collect();
        last_solution = inserted.clone();

        let violations = find_violations(problem, &inserted, &mut dead_existing);
        if violations.is_empty() {
            proven = sol.is_optimal();
            break;
        }
        for cut in violations {
            stats.cuts += 1;
            let k = cut.len() as i64;
            model.add_constraint(
                cut.iter().map(|&c| (d_vars[c as usize], 1)),
                Sense::Le,
                k - 1,
            );
        }
        // The previous incumbent may now be infeasible; rebuild the
        // warm start from the heuristic filtered by cuts (the solver
        // ignores infeasible warm starts anyway).
        warm = vec![false; d_vars.len()];
        for &c in &heur.inserted {
            warm[c as usize] = true;
        }
    }
    stats.proven_optimal = proven;

    let outcome = decode(problem, &last_solution, &dead_existing, start);
    (outcome, stats)
}

/// Checks an insertion set; returns no-good cuts (sets of inserted
/// candidate indices that must not all be chosen together). Existing
/// vias in uncolorable insertion-free components are added to
/// `dead_existing`.
fn find_violations(
    problem: &DviProblem,
    inserted: &[u32],
    dead_existing: &mut std::collections::HashSet<usize>,
) -> Vec<Vec<u32>> {
    let mut cuts: Vec<Vec<u32>> = Vec::new();
    let w = problem.grid_width().max(3);
    let h = problem.grid_height().max(3);
    for layer in problem.via_layers() {
        // Existing via index (for exclusion bookkeeping).
        let existing: Vec<(usize, (i32, i32))> = problem
            .vias()
            .iter()
            .enumerate()
            .filter(|(i, pv)| pv.via.below == layer && !dead_existing.contains(i))
            .map(|(i, pv)| (i, (pv.via.x, pv.via.y)))
            .collect();
        let ins: Vec<(u32, (i32, i32))> = inserted
            .iter()
            .copied()
            .filter(|&c| problem.candidates()[c as usize].via_layer == layer)
            .map(|c| (c, problem.candidates()[c as usize].loc))
            .collect();

        // FVP windows.
        let mut idx = FvpIndex::new(w, h);
        for &(_, p) in &existing {
            idx.add_via(p.0, p.1);
        }
        for &(_, p) in &ins {
            idx.add_via(p.0, p.1);
        }
        for (ox, oy) in idx.fvp_windows() {
            let members: Vec<u32> = ins
                .iter()
                .filter(|(_, (x, y))| (ox..ox + 3).contains(x) && (oy..oy + 3).contains(y))
                .map(|&(c, _)| c)
                .collect();
            if !members.is_empty() {
                cuts.push(members);
            }
            // An FVP among existing vias alone cannot be cut; it will
            // surface as an uncolorable component below.
        }
        if !cuts.is_empty() {
            continue; // fix FVPs first; coloring may change anyway
        }

        // Coloring check on the combined graph.
        let positions: Vec<(i32, i32)> = existing
            .iter()
            .map(|&(_, p)| p)
            .chain(ins.iter().map(|&(_, p)| p))
            .collect();
        let graph = DecompGraph::from_positions(positions.iter().copied());
        let greedy = welsh_powell(&graph, 3);
        if greedy.is_complete() {
            continue;
        }
        let uncol: std::collections::HashSet<u32> = greedy.uncolorable.iter().copied().collect();
        for comp in graph.components() {
            if !comp.iter().any(|v| uncol.contains(v)) {
                continue;
            }
            if comp.len() <= EXACT_COLORING_LIMIT {
                let sub =
                    DecompGraph::from_positions(comp.iter().map(|&v| graph.position(v as usize)));
                if exact_color(&sub, 3).is_some() {
                    continue; // greedy artifact, actually colorable
                }
            }
            // Truly (or assumed) uncolorable component.
            let members: Vec<u32> = comp
                .iter()
                .filter(|&&v| (v as usize) >= existing.len())
                .map(|&v| ins[v as usize - existing.len()].0)
                .collect();
            if members.is_empty() {
                // Pre-existing defect: count the component's vias as
                // uncolorable and stop checking them.
                for &v in &comp {
                    dead_existing.insert(existing[v as usize].0);
                }
            } else {
                cuts.push(members);
            }
        }
    }
    cuts
}

/// Builds the final outcome: colors all surviving vias layer by layer.
fn decode(
    problem: &DviProblem,
    inserted: &[u32],
    dead_existing: &std::collections::HashSet<usize>,
    start: Instant,
) -> DviOutcome {
    let mut via_colors: Vec<Option<u8>> = vec![None; problem.via_count()];
    let mut inserted_colors: Vec<u8> = vec![0; inserted.len()];
    for layer in problem.via_layers() {
        let existing: Vec<usize> = problem
            .vias()
            .iter()
            .enumerate()
            .filter(|(i, pv)| pv.via.below == layer && !dead_existing.contains(i))
            .map(|(i, _)| i)
            .collect();
        let ins: Vec<usize> = inserted
            .iter()
            .enumerate()
            .filter(|(_, &c)| problem.candidates()[c as usize].via_layer == layer)
            .map(|(k, _)| k)
            .collect();
        let positions: Vec<(i32, i32)> = existing
            .iter()
            .map(|&i| {
                let v = problem.vias()[i].via;
                (v.x, v.y)
            })
            .chain(
                ins.iter()
                    .map(|&k| problem.candidates()[inserted[k] as usize].loc),
            )
            .collect();
        let graph = DecompGraph::from_positions(positions.iter().copied());
        let coloring = match exact_small_or_greedy(&graph) {
            Some(c) => c,
            None => welsh_powell(&graph, 3).colors,
        };
        for (slot, &i) in existing.iter().enumerate() {
            via_colors[i] = coloring.get(slot).copied().flatten();
        }
        for (off, &k) in ins.iter().enumerate() {
            inserted_colors[k] = coloring
                .get(existing.len() + off)
                .copied()
                .flatten()
                .unwrap_or(0);
        }
    }
    DviOutcome {
        dead_via_count: problem.via_count() - inserted.len(),
        inserted: inserted.to_vec(),
        via_colors,
        inserted_colors,
        uncolorable_count: dead_existing.len(),
        runtime: start.elapsed(),
    }
}

/// Exact coloring when all components are small; `None` otherwise.
fn exact_small_or_greedy(graph: &DecompGraph) -> Option<Vec<Option<u8>>> {
    if graph
        .components()
        .iter()
        .all(|c| c.len() <= EXACT_COLORING_LIMIT)
    {
        exact_color(graph, 3).map(|v| v.into_iter().map(Some).collect())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::DviProblem;
    use crate::ilp::{solve_ilp, IlpOptions};
    use sadp_grid::{
        Axis, Net, NetId, Netlist, Pin, RoutedNet, RoutingGrid, RoutingSolution, SadpKind, Via,
        WireEdge,
    };

    fn chain_solution(n: i32, spacing: i32) -> RoutingSolution {
        let mut nl = Netlist::new();
        for k in 0..n {
            nl.push(Net::new(
                format!("n{k}"),
                vec![Pin::new(4, 4 + k * spacing), Pin::new(9, 4 + k * spacing)],
            ));
        }
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(20, 64), &nl);
        for k in 0..n {
            let y = 4 + k * spacing;
            let edges = (4..9)
                .map(|x| WireEdge::new(1, x, y, Axis::Horizontal))
                .collect();
            sol.set_route(
                NetId(k as u32),
                RoutedNet::new(edges, vec![Via::new(0, 4, y), Via::new(0, 9, y)]),
            );
        }
        sol
    }

    #[test]
    fn lazy_matches_monolithic_on_small_instances() {
        for spacing in [2, 3, 6] {
            let sol = chain_solution(3, spacing);
            let p = DviProblem::build(SadpKind::Sim, &sol);
            let (mono, raw) = solve_ilp(&p, &IlpOptions::default());
            let (lazy, stats) = solve_ilp_lazy(&p, &LazyIlpOptions::default());
            assert!(raw.is_optimal());
            assert!(stats.proven_optimal, "spacing {spacing}");
            assert_eq!(
                lazy.inserted_count(),
                mono.inserted_count(),
                "spacing {spacing}"
            );
            assert_eq!(lazy.uncolorable_count, mono.uncolorable_count);
        }
    }

    #[test]
    fn lazy_result_has_no_fvp_and_proper_colors() {
        let sol = chain_solution(6, 2);
        let p = DviProblem::build(SadpKind::Sim, &sol);
        let (out, stats) = solve_ilp_lazy(&p, &LazyIlpOptions::default());
        assert!(stats.proven_optimal);
        for layer in p.via_layers() {
            let mut idx = FvpIndex::new(20, 64);
            for (x, y) in p.existing_on_layer(layer) {
                idx.add_via(x, y);
            }
            for &c in &out.inserted {
                let cand = &p.candidates()[c as usize];
                if cand.via_layer == layer {
                    idx.add_via(cand.loc.0, cand.loc.1);
                }
            }
            assert!(idx.fvp_windows().is_empty());
        }
        // Colors proper.
        let mut all: Vec<((u8, i32, i32), u8)> = Vec::new();
        for (i, pv) in p.vias().iter().enumerate() {
            if let Some(c) = out.via_colors[i] {
                all.push(((pv.via.below, pv.via.x, pv.via.y), c));
            }
        }
        for (k, &ci) in out.inserted.iter().enumerate() {
            let cand = &p.candidates()[ci as usize];
            all.push((
                (cand.via_layer, cand.loc.0, cand.loc.1),
                out.inserted_colors[k],
            ));
        }
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                let ((la, xa, ya), ca) = all[i];
                let ((lb, xb, yb), cb) = all[j];
                if la == lb && tpl_decomp::vias_conflict(xb - xa, yb - ya) {
                    assert_ne!(ca, cb);
                }
            }
        }
    }

    #[test]
    fn lazy_never_loses_to_heuristic() {
        for n in [4, 6, 8] {
            let sol = chain_solution(n, 2);
            let p = DviProblem::build(SadpKind::Sim, &sol);
            let heur = solve_heuristic(&p, &DviParams::default());
            let (lazy, _) = solve_ilp_lazy(&p, &LazyIlpOptions::default());
            assert!(
                lazy.dead_via_count <= heur.dead_via_count,
                "n={n}: lazy {} vs heur {}",
                lazy.dead_via_count,
                heur.dead_via_count
            );
        }
    }

    #[test]
    fn empty_problem_is_trivial() {
        let mut nl = Netlist::new();
        nl.push(Net::new("a", vec![Pin::new(0, 0), Pin::new(1, 1)]));
        let sol = RoutingSolution::new(RoutingGrid::three_layer(8, 8), &nl);
        let p = DviProblem::build(SadpKind::Sim, &sol);
        let (out, stats) = solve_ilp_lazy(&p, &LazyIlpOptions::default());
        assert_eq!(out.inserted_count(), 0);
        assert!(stats.proven_optimal);
    }
}
