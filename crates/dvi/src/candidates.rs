//! DVI candidates (DVICs) and their feasibility.
//!
//! Every single via has four candidate locations beside it (paper
//! Fig. 5). A candidate is *feasible* when:
//!
//! 1. the redundant via location is inside the grid and no via of any
//!    net already sits there on the same via layer;
//! 2. on both metal layers the via connects, the net's metal either
//!    already covers the candidate location or a one-unit stub can be
//!    added without crossing another net's metal;
//! 3. every L-turn the stub would create — at the via end and, for
//!    T-junctions, at the far end — is manufacturable under the SADP
//!    turn rules including the unit-extension exception
//!    ([`sadp_decomp::stub_turn_ok`]).
//!
//! [`DviProblem`] collects all single vias of a routing solution, all
//! feasible candidates, and the pairwise conflicts (shared redundant
//! via location on one via layer, or stub metal that would short two
//! nets).

use std::collections::HashMap;

use sadp_decomp::stub_turn_ok;
use sadp_grid::{
    Dir, GridPoint, NetId, RoutedNet, RoutingGrid, RoutingSolution, SadpKind, Via, WireEdge,
};

/// An incremental view of layout occupancy: which net owns each metal
/// grid point and each via position.
///
/// Built from a whole [`RoutingSolution`] or maintained incrementally
/// by the router via [`LayoutView::add_route`] /
/// [`LayoutView::remove_route`]. Multiple owners per point are
/// tolerated (transient overlaps during negotiated routing).
#[derive(Debug, Clone)]
pub struct LayoutView {
    grid: RoutingGrid,
    point_owner: HashMap<GridPoint, Vec<NetId>>,
    via_owner: HashMap<(u8, i32, i32), Vec<NetId>>,
}

impl LayoutView {
    /// Creates an empty view over `grid`.
    pub fn new(grid: RoutingGrid) -> LayoutView {
        LayoutView {
            grid,
            point_owner: HashMap::new(),
            via_owner: HashMap::new(),
        }
    }

    /// Builds the view of a complete solution.
    pub fn from_solution(solution: &RoutingSolution) -> LayoutView {
        let mut view = LayoutView::new(solution.grid().clone());
        for (id, route) in solution.iter() {
            view.add_route(id, route);
        }
        view
    }

    /// The grid this view covers.
    pub fn grid(&self) -> &RoutingGrid {
        &self.grid
    }

    /// Registers a net's route.
    pub fn add_route(&mut self, id: NetId, route: &RoutedNet) {
        for p in route.covered_points() {
            self.point_owner.entry(p).or_default().push(id);
        }
        for v in route.vias() {
            self.via_owner
                .entry((v.below, v.x, v.y))
                .or_default()
                .push(id);
        }
    }

    /// Unregisters a net's route (must mirror a prior `add_route`).
    pub fn remove_route(&mut self, id: NetId, route: &RoutedNet) {
        for p in route.covered_points() {
            if let Some(owners) = self.point_owner.get_mut(&p) {
                if let Some(pos) = owners.iter().position(|&o| o == id) {
                    owners.swap_remove(pos);
                }
                if owners.is_empty() {
                    self.point_owner.remove(&p);
                }
            }
        }
        for v in route.vias() {
            let key = (v.below, v.x, v.y);
            if let Some(owners) = self.via_owner.get_mut(&key) {
                if let Some(pos) = owners.iter().position(|&o| o == id) {
                    owners.swap_remove(pos);
                }
                if owners.is_empty() {
                    self.via_owner.remove(&key);
                }
            }
        }
    }

    /// `true` if any net other than `net` covers metal point `p`.
    pub fn occupied_by_other(&self, p: GridPoint, net: NetId) -> bool {
        self.point_owner
            .get(&p)
            .is_some_and(|o| o.iter().any(|&n| n != net))
    }

    /// `true` if any via (of any net) sits at `(via_layer, x, y)`.
    pub fn via_at(&self, via_layer: u8, x: i32, y: i32) -> bool {
        self.via_owner.contains_key(&(via_layer, x, y))
    }

    /// The nets owning metal point `p` (may contain duplicates when a
    /// net registered the point through several routes/seeds).
    pub fn owners(&self, p: GridPoint) -> &[NetId] {
        self.point_owner.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The nets owning the via at `(via_layer, x, y)`.
    pub fn via_owners(&self, via_layer: u8, x: i32, y: i32) -> &[NetId] {
        self.via_owner
            .get(&(via_layer, x, y))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Distinct nets other than `net` covering point `p`.
    pub fn distinct_others(&self, p: GridPoint, net: NetId) -> usize {
        let mut seen: Vec<NetId> = Vec::new();
        for &o in self.owners(p) {
            if o != net && !seen.contains(&o) {
                seen.push(o);
            }
        }
        seen.len()
    }

    /// Iterates over all covered points with their owner lists.
    pub fn iter_points(&self) -> impl Iterator<Item = (GridPoint, &[NetId])> + '_ {
        self.point_owner.iter().map(|(&p, o)| (p, o.as_slice()))
    }
}

/// A feasible DVI candidate: a redundant-via position for one single
/// via, plus the stub metal needed to connect it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Index of the owning via in [`DviProblem::vias`].
    pub via_idx: u32,
    /// Direction from the single via to the redundant via.
    pub dir: Dir,
    /// Grid location of the redundant via.
    pub loc: (i32, i32),
    /// Via layer of the redundant via (same as the single via's).
    pub via_layer: u8,
    /// New metal unit edges required (empty when existing metal
    /// already reaches the location on both layers).
    pub stubs: Vec<WireEdge>,
}

/// One single via of the routing solution within a [`DviProblem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProblemVia {
    /// The via.
    pub via: Via,
    /// The net it belongs to.
    pub net: NetId,
    /// Indices of its feasible candidates in
    /// [`DviProblem::candidates`].
    pub candidates: Vec<u32>,
}

/// The TPL-aware DVI problem instance extracted from a routing
/// solution.
#[derive(Debug, Clone)]
pub struct DviProblem {
    kind: SadpKind,
    grid_width: i32,
    grid_height: i32,
    vias: Vec<ProblemVia>,
    candidates: Vec<Candidate>,
    conflicts: Vec<(u32, u32)>,
}

impl DviProblem {
    /// Extracts the DVI problem from a routing solution: enumerates
    /// all single vias, their feasible DVICs, and candidate conflicts.
    ///
    /// Feasibility testing — the dominant cost — fans out per net on
    /// the [`sadp_exec`] pool against the shared read-only
    /// [`LayoutView`]; the per-net results are merged in net order
    /// with sequentially assigned indices, so the built problem is
    /// identical for any thread count.
    pub fn build(kind: SadpKind, solution: &RoutingSolution) -> DviProblem {
        let view = LayoutView::from_solution(solution);
        let routes: Vec<(NetId, &RoutedNet)> = solution.iter().collect();
        let per_net: Vec<Vec<(Via, Vec<Candidate>)>> = sadp_exec::map(&routes, |&(net, route)| {
            route
                .vias()
                .iter()
                .map(|&via| {
                    let cands: Vec<Candidate> = Dir::PLANAR
                        .iter()
                        .filter_map(|&dir| feasible_candidate(kind, &view, route, net, via, dir))
                        .collect();
                    (via, cands)
                })
                .collect()
        });
        let mut vias = Vec::new();
        let mut candidates: Vec<Candidate> = Vec::new();
        for (&(net, _), net_vias) in routes.iter().zip(per_net) {
            for (via, cands) in net_vias {
                let mut pv = ProblemVia {
                    via,
                    net,
                    candidates: Vec::new(),
                };
                for cand in cands {
                    pv.candidates.push(candidates.len() as u32);
                    candidates.push(Candidate {
                        via_idx: vias.len() as u32,
                        ..cand
                    });
                }
                vias.push(pv);
            }
        }
        let conflicts = find_conflicts(&vias, &candidates);
        DviProblem {
            kind,
            grid_width: solution.grid().width(),
            grid_height: solution.grid().height(),
            vias,
            candidates,
            conflicts,
        }
    }

    /// The SADP process of the underlying layout.
    pub fn kind(&self) -> SadpKind {
        self.kind
    }

    /// Grid width in tracks.
    pub fn grid_width(&self) -> i32 {
        self.grid_width
    }

    /// Grid height in tracks.
    pub fn grid_height(&self) -> i32 {
        self.grid_height
    }

    /// All single vias.
    pub fn vias(&self) -> &[ProblemVia] {
        &self.vias
    }

    /// Number of single vias.
    pub fn via_count(&self) -> usize {
        self.vias.len()
    }

    /// All feasible candidates, across all vias.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Pairwise candidate conflicts (ordered index pairs).
    pub fn conflicts(&self) -> &[(u32, u32)] {
        &self.conflicts
    }

    /// Positions of all existing single vias on `via_layer`.
    pub fn existing_on_layer(&self, via_layer: u8) -> Vec<(i32, i32)> {
        self.vias
            .iter()
            .filter(|pv| pv.via.below == via_layer)
            .map(|pv| (pv.via.x, pv.via.y))
            .collect()
    }

    /// The distinct via layers present in the problem.
    pub fn via_layers(&self) -> Vec<u8> {
        let mut layers: Vec<u8> = self.vias.iter().map(|pv| pv.via.below).collect();
        layers.sort_unstable();
        layers.dedup();
        layers
    }
}

/// Tests one direction for feasibility; returns the candidate (with
/// `via_idx` left unset) when feasible.
///
/// Exposed for the router's cost-assignment scheme, which needs the
/// feasible-DVIC set of every routed via incrementally.
pub fn feasible_candidate(
    kind: SadpKind,
    view: &LayoutView,
    route: &RoutedNet,
    net: NetId,
    via: Via,
    dir: Dir,
) -> Option<Candidate> {
    let (dx, dy) = dir.step();
    let (lx, ly) = (via.x + dx, via.y + dy);
    if !view.grid().in_bounds_xy(lx, ly) {
        return None;
    }
    // Rule 1: the via location must be free on this via layer.
    if view.via_at(via.below, lx, ly) {
        return None;
    }
    let mut stubs = Vec::new();
    for layer in [via.below, via.below + 1] {
        let p = GridPoint::new(layer, via.x, via.y);
        let s = GridPoint::new(layer, lx, ly);
        let edge = WireEdge::between(p, s).expect("unit step");
        let edge_present = route.edges().binary_search(&edge).is_ok();
        if edge_present {
            continue; // metal already reaches the location
        }
        // Rule 2: the stub endpoint must not belong to another net.
        if view.occupied_by_other(s, net) {
            return None;
        }
        // Rule 3a: turns at the via end. A pin-only layer has no SADP
        // turn rules in our model (pin pads are drawn, not routed).
        if view.grid().is_routing_layer(layer) {
            for arm in route.arm_dirs(p) {
                if arm == dir || arm == dir.opposite() {
                    continue; // collinear: no turn
                }
                if !stub_turn_ok(kind, via.x, via.y, arm, dir) {
                    return None;
                }
            }
            // Rule 3b: turns at the far end when it lands on own
            // metal (T-junction).
            if route.covers(s) {
                for arm in route.arm_dirs(s) {
                    if arm == dir || arm == dir.opposite() {
                        continue;
                    }
                    if !stub_turn_ok(kind, s.x, s.y, arm, dir.opposite()) {
                        return None;
                    }
                }
            }
        }
        stubs.push(edge);
    }
    Some(Candidate {
        via_idx: u32::MAX, // patched by the caller
        dir,
        loc: (lx, ly),
        via_layer: via.below,
        stubs,
    })
}

/// Computes candidate conflicts: same redundant-via location on one
/// via layer (any nets), or stub metal shared between different nets.
fn find_conflicts(vias: &[ProblemVia], candidates: &[Candidate]) -> Vec<(u32, u32)> {
    let mut by_loc: HashMap<(u8, i32, i32), Vec<u32>> = HashMap::new();
    let mut by_stub_point: HashMap<GridPoint, Vec<u32>> = HashMap::new();
    for (i, c) in candidates.iter().enumerate() {
        by_loc
            .entry((c.via_layer, c.loc.0, c.loc.1))
            .or_default()
            .push(i as u32);
        for e in &c.stubs {
            for p in e.endpoints() {
                by_stub_point.entry(p).or_default().push(i as u32);
            }
        }
    }
    let mut set = std::collections::BTreeSet::new();
    for group in by_loc.values() {
        for (a, b) in pairs(group) {
            if candidates[a as usize].via_idx != candidates[b as usize].via_idx {
                set.insert((a.min(b), a.max(b)));
            }
        }
    }
    for group in by_stub_point.values() {
        for (a, b) in pairs(group) {
            let (ca, cb) = (&candidates[a as usize], &candidates[b as usize]);
            if ca.via_idx == cb.via_idx {
                continue;
            }
            let (na, nb) = (vias[ca.via_idx as usize].net, vias[cb.via_idx as usize].net);
            if na != nb {
                set.insert((a.min(b), a.max(b)));
            }
        }
    }
    set.into_iter().collect()
}

fn pairs(items: &[u32]) -> impl Iterator<Item = (u32, u32)> + '_ {
    items
        .iter()
        .enumerate()
        .flat_map(move |(i, &a)| items[i + 1..].iter().map(move |&b| (a, b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_grid::{Axis, Net, Netlist, Pin, RoutingGrid};

    /// One net: M2 wire from (4,4) to (8,4), vias down to pins at the
    /// ends. Grid big enough that bounds never interfere.
    fn single_net_solution() -> (Netlist, RoutingSolution) {
        let mut nl = Netlist::new();
        nl.push(Net::new("a", vec![Pin::new(4, 4), Pin::new(8, 4)]));
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(16, 16), &nl);
        let edges = (4..8)
            .map(|x| WireEdge::new(1, x, 4, Axis::Horizontal))
            .collect();
        sol.set_route(
            NetId(0),
            RoutedNet::new(edges, vec![Via::new(0, 4, 4), Via::new(0, 8, 4)]),
        );
        (nl, sol)
    }

    #[test]
    fn problem_enumerates_vias_and_candidates() {
        let (_nl, sol) = single_net_solution();
        let p = DviProblem::build(SadpKind::Sim, &sol);
        assert_eq!(p.via_count(), 2);
        assert!(!p.candidates().is_empty());
        for pv in p.vias() {
            assert!(pv.candidates.len() <= 4);
            for &ci in &pv.candidates {
                let c = &p.candidates()[ci as usize];
                assert_eq!(p.vias()[c.via_idx as usize].via, pv.via);
                // Candidate is one unit from its via.
                let d = (c.loc.0 - pv.via.x).abs() + (c.loc.1 - pv.via.y).abs();
                assert_eq!(d, 1);
            }
        }
    }

    #[test]
    fn east_west_along_wire_needs_no_m2_stub() {
        let (_nl, sol) = single_net_solution();
        let p = DviProblem::build(SadpKind::Sim, &sol);
        // Via at (4,4): the east candidate lies under existing M2
        // metal, so only the M1 stub is needed.
        let east = p
            .candidates()
            .iter()
            .find(|c| c.via_idx == 0 && c.dir == Dir::East)
            .expect("east candidate feasible");
        assert!(east.stubs.iter().all(|e| e.layer == 0));
    }

    #[test]
    fn occupied_location_is_infeasible() {
        let mut nl = Netlist::new();
        nl.push(Net::new("a", vec![Pin::new(4, 4), Pin::new(6, 4)]));
        nl.push(Net::new("b", vec![Pin::new(5, 5), Pin::new(7, 5)]));
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(16, 16), &nl);
        sol.set_route(
            NetId(0),
            RoutedNet::new(
                vec![
                    WireEdge::new(1, 4, 4, Axis::Horizontal),
                    WireEdge::new(1, 5, 4, Axis::Horizontal),
                ],
                vec![Via::new(0, 4, 4), Via::new(0, 6, 4)],
            ),
        );
        // Net b's M2 wire passes right above via (4,4) at y=5.
        sol.set_route(
            NetId(1),
            RoutedNet::new(
                vec![
                    WireEdge::new(1, 5, 5, Axis::Horizontal),
                    WireEdge::new(1, 6, 5, Axis::Horizontal),
                    WireEdge::new(1, 4, 5, Axis::Horizontal),
                ],
                vec![Via::new(0, 5, 5), Via::new(0, 7, 5)],
            ),
        );
        let p = DviProblem::build(SadpKind::Sim, &sol);
        // North candidate of via (4,4) is blocked by net b's metal.
        let north = p
            .candidates()
            .iter()
            .find(|c| p.vias()[c.via_idx as usize].via == Via::new(0, 4, 4) && c.dir == Dir::North);
        assert!(north.is_none(), "north DVIC must be infeasible");
    }

    #[test]
    fn existing_via_blocks_candidate_location() {
        let mut nl = Netlist::new();
        nl.push(Net::new("a", vec![Pin::new(4, 4), Pin::new(5, 4)]));
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(16, 16), &nl);
        sol.set_route(
            NetId(0),
            RoutedNet::new(
                vec![WireEdge::new(1, 4, 4, Axis::Horizontal)],
                vec![Via::new(0, 4, 4), Via::new(0, 5, 4)],
            ),
        );
        let p = DviProblem::build(SadpKind::Sim, &sol);
        // Via (4,4)'s east candidate sits exactly on via (5,4).
        let east = p
            .candidates()
            .iter()
            .find(|c| p.vias()[c.via_idx as usize].via == Via::new(0, 4, 4) && c.dir == Dir::East);
        assert!(east.is_none());
    }

    #[test]
    fn grid_border_limits_candidates() {
        let mut nl = Netlist::new();
        nl.push(Net::new("a", vec![Pin::new(0, 0), Pin::new(2, 0)]));
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(8, 8), &nl);
        sol.set_route(
            NetId(0),
            RoutedNet::new(
                vec![
                    WireEdge::new(1, 0, 0, Axis::Horizontal),
                    WireEdge::new(1, 1, 0, Axis::Horizontal),
                ],
                vec![Via::new(0, 0, 0), Via::new(0, 2, 0)],
            ),
        );
        let p = DviProblem::build(SadpKind::Sim, &sol);
        // Via at (0,0): west and south are out of bounds.
        let pv = p
            .vias()
            .iter()
            .find(|pv| pv.via == Via::new(0, 0, 0))
            .unwrap();
        for &ci in &pv.candidates {
            let c = &p.candidates()[ci as usize];
            assert!(c.loc.0 >= 0 && c.loc.1 >= 0);
        }
    }

    #[test]
    fn shared_location_conflicts_are_found() {
        // Two vias two tracks apart on the same via layer: the
        // candidate between them is shared -> conflict.
        let mut nl = Netlist::new();
        nl.push(Net::new("a", vec![Pin::new(4, 4), Pin::new(4, 6)]));
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(16, 16), &nl);
        // Route: via up at (4,4), M2 east-ish? Simplest: two separate
        // pin vias joined by M2+M3.
        sol.set_route(
            NetId(0),
            RoutedNet::new(
                vec![
                    WireEdge::new(2, 4, 4, Axis::Vertical),
                    WireEdge::new(2, 4, 5, Axis::Vertical),
                ],
                vec![
                    Via::new(0, 4, 4),
                    Via::new(1, 4, 4),
                    Via::new(1, 4, 6),
                    Via::new(0, 4, 6),
                ],
            ),
        );
        let p = DviProblem::build(SadpKind::Sim, &sol);
        // The two via-layer-1 vias at (4,4) and (4,6) both may want
        // location (4,5).
        let shared: Vec<&Candidate> = p
            .candidates()
            .iter()
            .filter(|c| c.via_layer == 1 && c.loc == (4, 5))
            .collect();
        if shared.len() == 2 {
            let (a, b) = (shared[0], shared[1]);
            let ia = p.candidates().iter().position(|c| c == a).unwrap() as u32;
            let ib = p.candidates().iter().position(|c| c == b).unwrap() as u32;
            assert!(p.conflicts().contains(&(ia.min(ib), ia.max(ib))));
        }
    }

    #[test]
    fn layout_view_add_remove_round_trip() {
        let (_nl, sol) = single_net_solution();
        let route = sol.route(NetId(0)).unwrap().clone();
        let mut view = LayoutView::new(sol.grid().clone());
        assert!(!view.occupied_by_other(GridPoint::new(1, 5, 4), NetId(9)));
        view.add_route(NetId(0), &route);
        assert!(view.occupied_by_other(GridPoint::new(1, 5, 4), NetId(9)));
        assert!(!view.occupied_by_other(GridPoint::new(1, 5, 4), NetId(0)));
        assert!(view.via_at(0, 4, 4));
        view.remove_route(NetId(0), &route);
        assert!(!view.occupied_by_other(GridPoint::new(1, 5, 4), NetId(9)));
        assert!(!view.via_at(0, 4, 4));
    }

    #[test]
    fn via_layers_lists_layers() {
        let (_nl, sol) = single_net_solution();
        let p = DviProblem::build(SadpKind::Sim, &sol);
        assert_eq!(p.via_layers(), vec![0]);
        assert_eq!(p.existing_on_layer(0).len(), 2);
        assert!(p.existing_on_layer(1).is_empty());
    }
}
