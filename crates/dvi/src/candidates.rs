//! DVI candidates (DVICs) and their feasibility.
//!
//! Every single via has four candidate locations beside it (paper
//! Fig. 5). A candidate is *feasible* when:
//!
//! 1. the redundant via location is inside the grid and no via of any
//!    net already sits there on the same via layer;
//! 2. on both metal layers the via connects, the net's metal either
//!    already covers the candidate location or a one-unit stub can be
//!    added without crossing another net's metal;
//! 3. every L-turn the stub would create — at the via end and, for
//!    T-junctions, at the far end — is manufacturable under the SADP
//!    turn rules including the unit-extension exception
//!    ([`sadp_decomp::stub_turn_ok`]).
//!
//! [`DviProblem`] collects all single vias of a routing solution, all
//! feasible candidates, and the pairwise conflicts (shared redundant
//! via location on one via layer, or stub metal that would short two
//! nets).

use sadp_decomp::stub_turn_ok;
use sadp_grid::{
    DenseGrid, Dir, GridPoint, NetId, RoutedNet, RoutingGrid, RoutingSolution, SadpKind, Via,
    WireEdge,
};

/// Read access to layout occupancy as needed by
/// [`feasible_candidate`]: implemented by the dense [`LayoutView`] and
/// by the hash-based [`reference::LayoutView`] kept for differential
/// testing.
pub trait Occupancy {
    /// The grid the view covers.
    fn grid(&self) -> &RoutingGrid;
    /// `true` if any net other than `net` covers metal point `p`.
    fn occupied_by_other(&self, p: GridPoint, net: NetId) -> bool;
    /// `true` if any via (of any net) sits at `(via_layer, x, y)`.
    fn via_at(&self, via_layer: u8, x: i32, y: i32) -> bool;
}

/// Sentinel `Slot::owner` value: no net covers the cell.
const FREE: u32 = u32::MAX;
/// Sentinel `Slot::owner` value: the cell's owners live in the
/// overflow table at index `Slot::data`.
const SPILLED: u32 = u32::MAX - 1;

/// One occupancy cell: either free, inline (a single owning net with
/// its multiplicity in `data`), or spilled to the overflow table.
#[derive(Debug, Clone, Copy)]
struct Slot {
    owner: u32,
    data: u32,
}

const EMPTY_SLOT: Slot = Slot {
    owner: FREE,
    data: 0,
};

/// Appends `id` to the owner multiset of `slot`, spilling the cell to
/// the overflow table on the first second-net registration.
fn slot_add<K>(
    slot: &mut Slot,
    spill: &mut Vec<(K, Vec<NetId>)>,
    free: &mut Vec<u32>,
    key: K,
    id: NetId,
) {
    debug_assert!(id.0 < SPILLED, "net id collides with slot sentinels");
    if slot.owner == FREE {
        *slot = Slot {
            owner: id.0,
            data: 1,
        };
    } else if slot.owner == SPILLED {
        spill[slot.data as usize].1.push(id);
    } else if slot.owner == id.0 {
        slot.data += 1;
    } else {
        // Second distinct net: expand the inline multiset into an
        // overflow entry, preserving registration order.
        let mut owners = Vec::with_capacity(slot.data as usize + 1);
        owners.resize(slot.data as usize, NetId(slot.owner));
        owners.push(id);
        let idx = match free.pop() {
            Some(i) => {
                spill[i as usize] = (key, owners);
                i
            }
            None => {
                spill.push((key, owners));
                (spill.len() - 1) as u32
            }
        };
        *slot = Slot {
            owner: SPILLED,
            data: idx,
        };
    }
}

/// Removes one occurrence of `id` from the owner multiset of `slot`,
/// collapsing an overflow entry back inline once a single distinct
/// net remains.
fn slot_remove<K>(slot: &mut Slot, spill: &mut [(K, Vec<NetId>)], free: &mut Vec<u32>, id: NetId) {
    if slot.owner == SPILLED {
        let entry = slot.data;
        let owners = &mut spill[entry as usize].1;
        if let Some(pos) = owners.iter().position(|&o| o == id) {
            owners.swap_remove(pos);
        }
        if owners.is_empty() {
            free.push(entry);
            *slot = EMPTY_SLOT;
        } else if owners.iter().all(|&o| o == owners[0]) {
            let collapsed = Slot {
                owner: owners[0].0,
                data: owners.len() as u32,
            };
            owners.clear();
            free.push(entry);
            *slot = collapsed;
        }
    } else if slot.owner == id.0 {
        slot.data -= 1;
        if slot.data == 0 {
            *slot = EMPTY_SLOT;
        }
    }
}

/// Iterator over the owners of one occupancy cell, with multiplicity,
/// in registration order.
#[derive(Debug, Clone)]
pub struct OwnerIter<'a>(OwnerIterInner<'a>);

#[derive(Debug, Clone)]
enum OwnerIterInner<'a> {
    Inline { id: u32, left: u32 },
    Slice(std::slice::Iter<'a, NetId>),
}

impl Iterator for OwnerIter<'_> {
    type Item = NetId;

    fn next(&mut self) -> Option<NetId> {
        match &mut self.0 {
            OwnerIterInner::Inline { id, left } => {
                if *left == 0 {
                    None
                } else {
                    *left -= 1;
                    Some(NetId(*id))
                }
            }
            OwnerIterInner::Slice(it) => it.next().copied(),
        }
    }
}

fn owner_iter<'a, K>(slot: Option<&Slot>, spill: &'a [(K, Vec<NetId>)]) -> OwnerIter<'a> {
    let inner = match slot {
        Some(s) if s.owner == SPILLED => OwnerIterInner::Slice(spill[s.data as usize].1.iter()),
        Some(s) if s.owner != FREE => OwnerIterInner::Inline {
            id: s.owner,
            left: s.data,
        },
        _ => OwnerIterInner::Inline { id: 0, left: 0 },
    };
    OwnerIter(inner)
}

/// An incremental view of layout occupancy: which net owns each metal
/// grid point and each via position.
///
/// Built from a whole [`RoutingSolution`] or maintained incrementally
/// by the router via [`LayoutView::add_route`] /
/// [`LayoutView::remove_route`]. Multiple owners per point are
/// tolerated (transient overlaps during negotiated routing).
///
/// Storage is dense: one [`Slot`] per metal grid point and one per via
/// position. The overwhelmingly common case — a single owning net —
/// is held inline in the slot, so `occupied_by_other` / `via_at` /
/// owner enumeration are O(1) array reads; the rare shared cells spill
/// into a compact overflow table whose live entries are exactly the
/// congested points.
#[derive(Debug, Clone)]
pub struct LayoutView {
    grid: RoutingGrid,
    points: DenseGrid<Slot>,
    vias: DenseGrid<Slot>,
    point_spill: Vec<(GridPoint, Vec<NetId>)>,
    point_free: Vec<u32>,
    via_spill: Vec<((u8, i32, i32), Vec<NetId>)>,
    via_free: Vec<u32>,
}

impl LayoutView {
    /// Creates an empty view over `grid`.
    pub fn new(grid: RoutingGrid) -> LayoutView {
        let points = DenseGrid::new(grid.layer_count(), grid.width(), grid.height(), EMPTY_SLOT);
        let vias = DenseGrid::new(
            grid.via_layer_count(),
            grid.width(),
            grid.height(),
            EMPTY_SLOT,
        );
        LayoutView {
            grid,
            points,
            vias,
            point_spill: Vec::new(),
            point_free: Vec::new(),
            via_spill: Vec::new(),
            via_free: Vec::new(),
        }
    }

    /// Builds the view of a complete solution.
    pub fn from_solution(solution: &RoutingSolution) -> LayoutView {
        let mut view = LayoutView::new(solution.grid().clone());
        for (id, route) in solution.iter() {
            view.add_route(id, route);
        }
        view
    }

    /// The grid this view covers.
    pub fn grid(&self) -> &RoutingGrid {
        &self.grid
    }

    /// Registers a net's route.
    pub fn add_route(&mut self, id: NetId, route: &RoutedNet) {
        for &p in route.covered_points_sorted() {
            let Some(slot) = self.points.get_mut(p) else {
                continue; // point outside the grid: nothing to track
            };
            slot_add(slot, &mut self.point_spill, &mut self.point_free, p, id);
        }
        for v in route.vias() {
            let p = GridPoint::new(v.below, v.x, v.y);
            let Some(slot) = self.vias.get_mut(p) else {
                continue;
            };
            slot_add(
                slot,
                &mut self.via_spill,
                &mut self.via_free,
                (v.below, v.x, v.y),
                id,
            );
        }
    }

    /// Unregisters a net's route (must mirror a prior `add_route`).
    pub fn remove_route(&mut self, id: NetId, route: &RoutedNet) {
        for &p in route.covered_points_sorted() {
            let Some(slot) = self.points.get_mut(p) else {
                continue; // must mirror add_route, which also skipped it
            };
            slot_remove(slot, &mut self.point_spill, &mut self.point_free, id);
        }
        for v in route.vias() {
            let p = GridPoint::new(v.below, v.x, v.y);
            let Some(slot) = self.vias.get_mut(p) else {
                continue;
            };
            slot_remove(slot, &mut self.via_spill, &mut self.via_free, id);
        }
    }

    /// `true` if any net other than `net` covers metal point `p`.
    #[inline]
    pub fn occupied_by_other(&self, p: GridPoint, net: NetId) -> bool {
        match self.points.get(p) {
            // A spilled cell holds >= 2 distinct nets by invariant.
            Some(s) if s.owner == SPILLED => true,
            Some(s) if s.owner != FREE => s.owner != net.0,
            _ => false,
        }
    }

    /// `true` if any via (of any net) sits at `(via_layer, x, y)`.
    #[inline]
    pub fn via_at(&self, via_layer: u8, x: i32, y: i32) -> bool {
        self.vias
            .get(GridPoint::new(via_layer, x, y))
            .is_some_and(|s| s.owner != FREE)
    }

    /// The nets owning metal point `p`, with multiplicity, in
    /// registration order (a net registered through several
    /// routes/seeds appears several times).
    pub fn owners(&self, p: GridPoint) -> OwnerIter<'_> {
        owner_iter(self.points.get(p), &self.point_spill)
    }

    /// The nets owning the via at `(via_layer, x, y)`.
    pub fn via_owners(&self, via_layer: u8, x: i32, y: i32) -> OwnerIter<'_> {
        owner_iter(
            self.vias.get(GridPoint::new(via_layer, x, y)),
            &self.via_spill,
        )
    }

    /// Distinct nets other than `net` covering point `p`.
    pub fn distinct_others(&self, p: GridPoint, net: NetId) -> usize {
        match self.points.get(p) {
            Some(s) if s.owner == SPILLED => {
                let owners = &self.point_spill[s.data as usize].1;
                let mut seen: Vec<NetId> = Vec::with_capacity(owners.len());
                for &o in owners {
                    if o != net && !seen.contains(&o) {
                        seen.push(o);
                    }
                }
                seen.len()
            }
            Some(s) if s.owner != FREE => usize::from(s.owner != net.0),
            _ => 0,
        }
    }

    /// All metal points currently covered by two or more distinct
    /// nets, sorted — exactly the live overflow entries.
    pub fn multi_owner_points(&self) -> Vec<GridPoint> {
        let mut out: Vec<GridPoint> = self
            .point_spill
            .iter()
            .filter(|(_, owners)| !owners.is_empty())
            .map(|(p, _)| *p)
            .collect();
        out.sort_unstable();
        out
    }
}

impl Occupancy for LayoutView {
    fn grid(&self) -> &RoutingGrid {
        LayoutView::grid(self)
    }

    fn occupied_by_other(&self, p: GridPoint, net: NetId) -> bool {
        LayoutView::occupied_by_other(self, p, net)
    }

    fn via_at(&self, via_layer: u8, x: i32, y: i32) -> bool {
        LayoutView::via_at(self, via_layer, x, y)
    }
}

/// A feasible DVI candidate: a redundant-via position for one single
/// via, plus the stub metal needed to connect it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Index of the owning via in [`DviProblem::vias`].
    pub via_idx: u32,
    /// Direction from the single via to the redundant via.
    pub dir: Dir,
    /// Grid location of the redundant via.
    pub loc: (i32, i32),
    /// Via layer of the redundant via (same as the single via's).
    pub via_layer: u8,
    /// New metal unit edges required (empty when existing metal
    /// already reaches the location on both layers).
    pub stubs: Vec<WireEdge>,
}

/// One single via of the routing solution within a [`DviProblem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProblemVia {
    /// The via.
    pub via: Via,
    /// The net it belongs to.
    pub net: NetId,
    /// Indices of its feasible candidates in
    /// [`DviProblem::candidates`].
    pub candidates: Vec<u32>,
}

/// The TPL-aware DVI problem instance extracted from a routing
/// solution.
#[derive(Debug, Clone)]
pub struct DviProblem {
    kind: SadpKind,
    grid_width: i32,
    grid_height: i32,
    vias: Vec<ProblemVia>,
    candidates: Vec<Candidate>,
    conflicts: Vec<(u32, u32)>,
}

impl DviProblem {
    /// Validating variant of [`DviProblem::build`]: rejects a solution
    /// whose routes or vias fall outside the grid (or otherwise fail
    /// [`RoutingSolution::validate`]) with a structured error instead
    /// of building a problem over inconsistent geometry.
    pub fn try_build(
        kind: SadpKind,
        solution: &RoutingSolution,
    ) -> Result<DviProblem, sadp_grid::RouteError> {
        solution.validate()?;
        Ok(DviProblem::build(kind, solution))
    }

    /// Extracts the DVI problem from a routing solution: enumerates
    /// all single vias, their feasible DVICs, and candidate conflicts.
    ///
    /// Feasibility testing — the dominant cost — fans out per net on
    /// the [`sadp_exec`] pool against the shared read-only
    /// [`LayoutView`]; the per-net results are merged in net order
    /// with sequentially assigned indices, so the built problem is
    /// identical for any thread count.
    pub fn build(kind: SadpKind, solution: &RoutingSolution) -> DviProblem {
        let view = LayoutView::from_solution(solution);
        let routes: Vec<(NetId, &RoutedNet)> = solution.iter().collect();
        let per_net: Vec<Vec<(Via, Vec<Candidate>)>> = sadp_exec::map(&routes, |&(net, route)| {
            route
                .vias()
                .iter()
                .map(|&via| {
                    let cands: Vec<Candidate> = Dir::PLANAR
                        .iter()
                        .filter_map(|&dir| feasible_candidate(kind, &view, route, net, via, dir))
                        .collect();
                    (via, cands)
                })
                .collect()
        });
        let mut vias = Vec::new();
        let mut candidates: Vec<Candidate> = Vec::new();
        for (&(net, _), net_vias) in routes.iter().zip(per_net) {
            for (via, cands) in net_vias {
                let mut pv = ProblemVia {
                    via,
                    net,
                    candidates: Vec::new(),
                };
                for cand in cands {
                    pv.candidates.push(candidates.len() as u32);
                    candidates.push(Candidate {
                        via_idx: vias.len() as u32,
                        ..cand
                    });
                }
                vias.push(pv);
            }
        }
        let conflicts = find_conflicts(&vias, &candidates, solution.grid());
        DviProblem {
            kind,
            grid_width: solution.grid().width(),
            grid_height: solution.grid().height(),
            vias,
            candidates,
            conflicts,
        }
    }

    /// The SADP process of the underlying layout.
    pub fn kind(&self) -> SadpKind {
        self.kind
    }

    /// Grid width in tracks.
    pub fn grid_width(&self) -> i32 {
        self.grid_width
    }

    /// Grid height in tracks.
    pub fn grid_height(&self) -> i32 {
        self.grid_height
    }

    /// All single vias.
    pub fn vias(&self) -> &[ProblemVia] {
        &self.vias
    }

    /// Number of single vias.
    pub fn via_count(&self) -> usize {
        self.vias.len()
    }

    /// All feasible candidates, across all vias.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Pairwise candidate conflicts (ordered index pairs).
    pub fn conflicts(&self) -> &[(u32, u32)] {
        &self.conflicts
    }

    /// Positions of all existing single vias on `via_layer`.
    pub fn existing_on_layer(&self, via_layer: u8) -> Vec<(i32, i32)> {
        self.vias
            .iter()
            .filter(|pv| pv.via.below == via_layer)
            .map(|pv| (pv.via.x, pv.via.y))
            .collect()
    }

    /// The distinct via layers present in the problem.
    pub fn via_layers(&self) -> Vec<u8> {
        let mut layers: Vec<u8> = self.vias.iter().map(|pv| pv.via.below).collect();
        layers.sort_unstable();
        layers.dedup();
        layers
    }

    /// Builds the shared by-location candidate index used by the DVI
    /// solvers; per-cell iteration yields ascending candidate indices.
    pub(crate) fn candidate_loc_index(&self) -> LocIndex {
        let layers = self.via_layers().last().map_or(0, |l| l + 1);
        LocIndex::of_candidate_locs(layers, self.grid_width, self.grid_height, &self.candidates)
    }
}

/// Tests one direction for feasibility; returns the candidate (with
/// `via_idx` left unset) when feasible.
///
/// Exposed for the router's cost-assignment scheme, which needs the
/// feasible-DVIC set of every routed via incrementally. Generic over
/// the occupancy view so the dense and reference implementations run
/// the same rule logic; route-side queries go through the route's
/// precomputed arm masks (O(1) per probe).
pub fn feasible_candidate<V: Occupancy>(
    kind: SadpKind,
    view: &V,
    route: &RoutedNet,
    net: NetId,
    via: Via,
    dir: Dir,
) -> Option<Candidate> {
    let (dx, dy) = dir.step();
    let (lx, ly) = (via.x + dx, via.y + dy);
    if !view.grid().in_bounds_xy(lx, ly) {
        return None;
    }
    // Rule 1: the via location must be free on this via layer.
    if view.via_at(via.below, lx, ly) {
        return None;
    }
    let mut stubs = Vec::new();
    for layer in [via.below, via.below + 1] {
        let p = GridPoint::new(layer, via.x, via.y);
        let s = GridPoint::new(layer, lx, ly);
        if route.has_arm(p, dir) {
            continue; // metal already reaches the location
        }
        // Rule 2: the stub endpoint must not belong to another net.
        if view.occupied_by_other(s, net) {
            return None;
        }
        // Rule 3a: turns at the via end. A pin-only layer has no SADP
        // turn rules in our model (pin pads are drawn, not routed).
        if view.grid().is_routing_layer(layer) {
            let mask = route.arm_mask(p);
            for (i, arm) in Dir::PLANAR.into_iter().enumerate() {
                if mask & (1 << i) == 0 || arm == dir || arm == dir.opposite() {
                    continue; // absent, or collinear: no turn
                }
                if !stub_turn_ok(kind, via.x, via.y, arm, dir) {
                    return None;
                }
            }
            // Rule 3b: turns at the far end when it lands on own
            // metal (T-junction).
            if route.covers(s) {
                let mask = route.arm_mask(s);
                for (i, arm) in Dir::PLANAR.into_iter().enumerate() {
                    if mask & (1 << i) == 0 || arm == dir || arm == dir.opposite() {
                        continue;
                    }
                    if !stub_turn_ok(kind, s.x, s.y, arm, dir.opposite()) {
                        return None;
                    }
                }
            }
        }
        stubs.push(WireEdge::between(p, s)?);
    }
    Some(Candidate {
        via_idx: u32::MAX, // patched by the caller
        dir,
        loc: (lx, ly),
        via_layer: via.below,
        stubs,
    })
}

/// Sentinel for an empty [`LocIndex`] cell / chain end.
const LOC_NONE: u32 = u32::MAX;

/// A dense by-location index: per-`(layer, x, y)` cell chains of `u32`
/// entry ids, built once over a known entry count and queried with no
/// hashing.
///
/// Insertion pushes to the front of a cell's chain, so builders insert
/// entries in *reverse* id order to make per-cell iteration yield
/// ascending ids (the order the old hash-map builders produced). This
/// is the shared helper behind `find_conflicts`, the heuristic
/// solver's `cand_by_loc`, and the ILP builder's `cands_at`.
#[derive(Debug, Clone)]
pub(crate) struct LocIndex {
    head: DenseGrid<u32>,
    next: Vec<u32>,
}

impl LocIndex {
    /// Creates an empty index over `layers * width * height` cells for
    /// `entries` chainable entry ids.
    pub(crate) fn new(layers: u8, width: i32, height: i32, entries: usize) -> LocIndex {
        LocIndex {
            head: DenseGrid::new(layers, width, height, LOC_NONE),
            next: vec![LOC_NONE; entries],
        }
    }

    /// Prepends `entry` to the chain of `(layer, x, y)`. Each entry id
    /// may be inserted at most once across all cells.
    pub(crate) fn insert(&mut self, layer: u8, x: i32, y: i32, entry: u32) {
        let Some(head) = self.head.get_mut(GridPoint::new(layer, x, y)) else {
            debug_assert!(false, "LocIndex insertion outside the grid");
            return;
        };
        debug_assert_eq!(self.next[entry as usize], LOC_NONE);
        self.next[entry as usize] = *head;
        *head = entry;
    }

    /// Iterates the entry ids at `(layer, x, y)`; empty for cells
    /// outside the grid.
    pub(crate) fn at(&self, layer: u8, x: i32, y: i32) -> LocIter<'_> {
        let cur = self
            .head
            .get(GridPoint::new(layer, x, y))
            .copied()
            .unwrap_or(LOC_NONE);
        LocIter {
            next: &self.next,
            cur,
        }
    }

    /// Iterates the non-empty cells' chains in cell order.
    pub(crate) fn groups(&self) -> impl Iterator<Item = LocIter<'_>> + '_ {
        self.head
            .iter()
            .filter(|(_, &h)| h != LOC_NONE)
            .map(move |(_, &h)| LocIter {
                next: &self.next,
                cur: h,
            })
    }

    /// Indexes candidates by redundant-via location `(via_layer, loc)`;
    /// per-cell iteration yields candidate indices in ascending order.
    pub(crate) fn of_candidate_locs(
        layers: u8,
        width: i32,
        height: i32,
        candidates: &[Candidate],
    ) -> LocIndex {
        let mut idx = LocIndex::new(layers, width, height, candidates.len());
        for (i, c) in candidates.iter().enumerate().rev() {
            idx.insert(c.via_layer, c.loc.0, c.loc.1, i as u32);
        }
        idx
    }
}

/// Iterator over one [`LocIndex`] cell's entry chain.
#[derive(Debug, Clone)]
pub(crate) struct LocIter<'a> {
    next: &'a [u32],
    cur: u32,
}

impl Iterator for LocIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.cur == LOC_NONE {
            return None;
        }
        let e = self.cur;
        self.cur = self.next[e as usize];
        Some(e)
    }
}

/// Computes candidate conflicts: same redundant-via location on one
/// via layer (any nets), or stub metal shared between different nets.
fn find_conflicts(
    vias: &[ProblemVia],
    candidates: &[Candidate],
    grid: &RoutingGrid,
) -> Vec<(u32, u32)> {
    let by_loc = LocIndex::of_candidate_locs(
        grid.via_layer_count(),
        grid.width(),
        grid.height(),
        candidates,
    );
    // Stub endpoints live on metal layers; a candidate has at most two
    // stub edges (one per metal layer), so at most four endpoint
    // entries: entry id = candidate * 4 + endpoint slot.
    let mut by_stub_point = LocIndex::new(
        grid.layer_count(),
        grid.width(),
        grid.height(),
        candidates.len() * 4,
    );
    for (i, c) in candidates.iter().enumerate().rev() {
        let mut k = 0;
        for e in &c.stubs {
            for p in e.endpoints() {
                by_stub_point.insert(p.layer, p.x, p.y, (i * 4 + k) as u32);
                k += 1;
            }
        }
    }
    let mut set = std::collections::BTreeSet::new();
    let mut group: Vec<u32> = Vec::new();
    for chain in by_loc.groups() {
        group.clear();
        group.extend(chain);
        for (a, b) in pairs(&group) {
            if candidates[a as usize].via_idx != candidates[b as usize].via_idx {
                set.insert((a.min(b), a.max(b)));
            }
        }
    }
    for chain in by_stub_point.groups() {
        group.clear();
        group.extend(chain.map(|e| e / 4));
        for (a, b) in pairs(&group) {
            let (ca, cb) = (&candidates[a as usize], &candidates[b as usize]);
            if ca.via_idx == cb.via_idx {
                continue;
            }
            let (na, nb) = (vias[ca.via_idx as usize].net, vias[cb.via_idx as usize].net);
            if na != nb {
                set.insert((a.min(b), a.max(b)));
            }
        }
    }
    set.into_iter().collect()
}

fn pairs(items: &[u32]) -> impl Iterator<Item = (u32, u32)> + '_ {
    items
        .iter()
        .enumerate()
        .flat_map(move |(i, &a)| items[i + 1..].iter().map(move |&b| (a, b)))
}

/// The hash-based occupancy implementation the dense [`LayoutView`]
/// replaced, kept compilable for differential tests and the
/// `bench_costs` before/after comparison (enable with
/// `--features reference-occupancy`).
#[cfg(any(test, feature = "reference-occupancy"))]
pub mod reference {
    use std::collections::HashMap;

    use sadp_decomp::stub_turn_ok;
    use sadp_grid::{
        Dir, GridPoint, NetId, RoutedNet, RoutingGrid, RoutingSolution, SadpKind, Via, WireEdge,
    };

    use super::{Candidate, Occupancy};

    /// Hash-map layout occupancy (the pre-dense implementation).
    #[derive(Debug, Clone)]
    pub struct LayoutView {
        grid: RoutingGrid,
        point_owner: HashMap<GridPoint, Vec<NetId>>,
        via_owner: HashMap<(u8, i32, i32), Vec<NetId>>,
    }

    impl LayoutView {
        /// Creates an empty view over `grid`.
        pub fn new(grid: RoutingGrid) -> LayoutView {
            LayoutView {
                grid,
                point_owner: HashMap::new(),
                via_owner: HashMap::new(),
            }
        }

        /// Builds the view of a complete solution.
        pub fn from_solution(solution: &RoutingSolution) -> LayoutView {
            let mut view = LayoutView::new(solution.grid().clone());
            for (id, route) in solution.iter() {
                view.add_route(id, route);
            }
            view
        }

        /// The grid this view covers.
        pub fn grid(&self) -> &RoutingGrid {
            &self.grid
        }

        /// Registers a net's route.
        pub fn add_route(&mut self, id: NetId, route: &RoutedNet) {
            for p in route.covered_points() {
                self.point_owner.entry(p).or_default().push(id);
            }
            for v in route.vias() {
                self.via_owner
                    .entry((v.below, v.x, v.y))
                    .or_default()
                    .push(id);
            }
        }

        /// Unregisters a net's route (must mirror a prior `add_route`).
        pub fn remove_route(&mut self, id: NetId, route: &RoutedNet) {
            for p in route.covered_points() {
                if let Some(owners) = self.point_owner.get_mut(&p) {
                    if let Some(pos) = owners.iter().position(|&o| o == id) {
                        owners.swap_remove(pos);
                    }
                    if owners.is_empty() {
                        self.point_owner.remove(&p);
                    }
                }
            }
            for v in route.vias() {
                let key = (v.below, v.x, v.y);
                if let Some(owners) = self.via_owner.get_mut(&key) {
                    if let Some(pos) = owners.iter().position(|&o| o == id) {
                        owners.swap_remove(pos);
                    }
                    if owners.is_empty() {
                        self.via_owner.remove(&key);
                    }
                }
            }
        }

        /// `true` if any net other than `net` covers metal point `p`.
        pub fn occupied_by_other(&self, p: GridPoint, net: NetId) -> bool {
            self.point_owner
                .get(&p)
                .is_some_and(|o| o.iter().any(|&n| n != net))
        }

        /// `true` if any via (of any net) sits at `(via_layer, x, y)`.
        pub fn via_at(&self, via_layer: u8, x: i32, y: i32) -> bool {
            self.via_owner.contains_key(&(via_layer, x, y))
        }

        /// The nets owning metal point `p` (with multiplicity).
        pub fn owners(&self, p: GridPoint) -> &[NetId] {
            self.point_owner.get(&p).map(Vec::as_slice).unwrap_or(&[])
        }

        /// The nets owning the via at `(via_layer, x, y)`.
        pub fn via_owners(&self, via_layer: u8, x: i32, y: i32) -> &[NetId] {
            self.via_owner
                .get(&(via_layer, x, y))
                .map(Vec::as_slice)
                .unwrap_or(&[])
        }

        /// Distinct nets other than `net` covering point `p`.
        pub fn distinct_others(&self, p: GridPoint, net: NetId) -> usize {
            let mut seen: Vec<NetId> = Vec::new();
            for &o in self.owners(p) {
                if o != net && !seen.contains(&o) {
                    seen.push(o);
                }
            }
            seen.len()
        }
    }

    impl Occupancy for LayoutView {
        fn grid(&self) -> &RoutingGrid {
            LayoutView::grid(self)
        }

        fn occupied_by_other(&self, p: GridPoint, net: NetId) -> bool {
            LayoutView::occupied_by_other(self, p, net)
        }

        fn via_at(&self, via_layer: u8, x: i32, y: i32) -> bool {
            LayoutView::via_at(self, via_layer, x, y)
        }
    }

    /// `arm_dirs` as the pre-dense implementation computed it: one
    /// edge-list binary search per planar direction.
    fn arm_dirs_scan(route: &RoutedNet, p: GridPoint) -> Vec<Dir> {
        let mut dirs = Vec::new();
        for d in Dir::PLANAR {
            if let Some(e) = WireEdge::between(p, p.stepped(d)) {
                if route.edges().binary_search(&e).is_ok() {
                    dirs.push(d);
                }
            }
        }
        dirs
    }

    /// `covers` as the pre-dense implementation computed it.
    fn covers_scan(route: &RoutedNet, p: GridPoint) -> bool {
        for d in Dir::PLANAR {
            if let Some(e) = WireEdge::between(p, p.stepped(d)) {
                if route.edges().binary_search(&e).is_ok() {
                    return true;
                }
            }
        }
        route
            .vias()
            .iter()
            .any(|v| (v.bottom() == p) || (v.top() == p))
    }

    /// [`super::feasible_candidate`] with the pre-dense route-side
    /// queries (edge-list binary searches) — the honest baseline for
    /// `bench_costs` and the differential property test.
    pub fn feasible_candidate_reference(
        kind: SadpKind,
        view: &LayoutView,
        route: &RoutedNet,
        net: NetId,
        via: Via,
        dir: Dir,
    ) -> Option<Candidate> {
        let (dx, dy) = dir.step();
        let (lx, ly) = (via.x + dx, via.y + dy);
        if !view.grid().in_bounds_xy(lx, ly) {
            return None;
        }
        if view.via_at(via.below, lx, ly) {
            return None;
        }
        let mut stubs = Vec::new();
        for layer in [via.below, via.below + 1] {
            let p = GridPoint::new(layer, via.x, via.y);
            let s = GridPoint::new(layer, lx, ly);
            let edge = WireEdge::between(p, s)?;
            if route.edges().binary_search(&edge).is_ok() {
                continue;
            }
            if view.occupied_by_other(s, net) {
                return None;
            }
            if view.grid().is_routing_layer(layer) {
                for arm in arm_dirs_scan(route, p) {
                    if arm == dir || arm == dir.opposite() {
                        continue;
                    }
                    if !stub_turn_ok(kind, via.x, via.y, arm, dir) {
                        return None;
                    }
                }
                if covers_scan(route, s) {
                    for arm in arm_dirs_scan(route, s) {
                        if arm == dir || arm == dir.opposite() {
                            continue;
                        }
                        if !stub_turn_ok(kind, s.x, s.y, arm, dir.opposite()) {
                            return None;
                        }
                    }
                }
            }
            stubs.push(edge);
        }
        Some(Candidate {
            via_idx: u32::MAX,
            dir,
            loc: (lx, ly),
            via_layer: via.below,
            stubs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_grid::{Axis, Net, Netlist, Pin, RoutingGrid};

    /// One net: M2 wire from (4,4) to (8,4), vias down to pins at the
    /// ends. Grid big enough that bounds never interfere.
    fn single_net_solution() -> (Netlist, RoutingSolution) {
        let mut nl = Netlist::new();
        nl.push(Net::new("a", vec![Pin::new(4, 4), Pin::new(8, 4)]));
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(16, 16), &nl);
        let edges = (4..8)
            .map(|x| WireEdge::new(1, x, 4, Axis::Horizontal))
            .collect();
        sol.set_route(
            NetId(0),
            RoutedNet::new(edges, vec![Via::new(0, 4, 4), Via::new(0, 8, 4)]),
        );
        (nl, sol)
    }

    #[test]
    fn problem_enumerates_vias_and_candidates() {
        let (_nl, sol) = single_net_solution();
        let p = DviProblem::build(SadpKind::Sim, &sol);
        assert_eq!(p.via_count(), 2);
        assert!(!p.candidates().is_empty());
        for pv in p.vias() {
            assert!(pv.candidates.len() <= 4);
            for &ci in &pv.candidates {
                let c = &p.candidates()[ci as usize];
                assert_eq!(p.vias()[c.via_idx as usize].via, pv.via);
                // Candidate is one unit from its via.
                let d = (c.loc.0 - pv.via.x).abs() + (c.loc.1 - pv.via.y).abs();
                assert_eq!(d, 1);
            }
        }
    }

    #[test]
    fn east_west_along_wire_needs_no_m2_stub() {
        let (_nl, sol) = single_net_solution();
        let p = DviProblem::build(SadpKind::Sim, &sol);
        // Via at (4,4): the east candidate lies under existing M2
        // metal, so only the M1 stub is needed.
        let east = p
            .candidates()
            .iter()
            .find(|c| c.via_idx == 0 && c.dir == Dir::East)
            .expect("east candidate feasible");
        assert!(east.stubs.iter().all(|e| e.layer == 0));
    }

    #[test]
    fn occupied_location_is_infeasible() {
        let mut nl = Netlist::new();
        nl.push(Net::new("a", vec![Pin::new(4, 4), Pin::new(6, 4)]));
        nl.push(Net::new("b", vec![Pin::new(5, 5), Pin::new(7, 5)]));
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(16, 16), &nl);
        sol.set_route(
            NetId(0),
            RoutedNet::new(
                vec![
                    WireEdge::new(1, 4, 4, Axis::Horizontal),
                    WireEdge::new(1, 5, 4, Axis::Horizontal),
                ],
                vec![Via::new(0, 4, 4), Via::new(0, 6, 4)],
            ),
        );
        // Net b's M2 wire passes right above via (4,4) at y=5.
        sol.set_route(
            NetId(1),
            RoutedNet::new(
                vec![
                    WireEdge::new(1, 5, 5, Axis::Horizontal),
                    WireEdge::new(1, 6, 5, Axis::Horizontal),
                    WireEdge::new(1, 4, 5, Axis::Horizontal),
                ],
                vec![Via::new(0, 5, 5), Via::new(0, 7, 5)],
            ),
        );
        let p = DviProblem::build(SadpKind::Sim, &sol);
        // North candidate of via (4,4) is blocked by net b's metal.
        let north = p
            .candidates()
            .iter()
            .find(|c| p.vias()[c.via_idx as usize].via == Via::new(0, 4, 4) && c.dir == Dir::North);
        assert!(north.is_none(), "north DVIC must be infeasible");
    }

    #[test]
    fn existing_via_blocks_candidate_location() {
        let mut nl = Netlist::new();
        nl.push(Net::new("a", vec![Pin::new(4, 4), Pin::new(5, 4)]));
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(16, 16), &nl);
        sol.set_route(
            NetId(0),
            RoutedNet::new(
                vec![WireEdge::new(1, 4, 4, Axis::Horizontal)],
                vec![Via::new(0, 4, 4), Via::new(0, 5, 4)],
            ),
        );
        let p = DviProblem::build(SadpKind::Sim, &sol);
        // Via (4,4)'s east candidate sits exactly on via (5,4).
        let east = p
            .candidates()
            .iter()
            .find(|c| p.vias()[c.via_idx as usize].via == Via::new(0, 4, 4) && c.dir == Dir::East);
        assert!(east.is_none());
    }

    #[test]
    fn grid_border_limits_candidates() {
        let mut nl = Netlist::new();
        nl.push(Net::new("a", vec![Pin::new(0, 0), Pin::new(2, 0)]));
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(8, 8), &nl);
        sol.set_route(
            NetId(0),
            RoutedNet::new(
                vec![
                    WireEdge::new(1, 0, 0, Axis::Horizontal),
                    WireEdge::new(1, 1, 0, Axis::Horizontal),
                ],
                vec![Via::new(0, 0, 0), Via::new(0, 2, 0)],
            ),
        );
        let p = DviProblem::build(SadpKind::Sim, &sol);
        // Via at (0,0): west and south are out of bounds.
        let pv = p
            .vias()
            .iter()
            .find(|pv| pv.via == Via::new(0, 0, 0))
            .unwrap();
        for &ci in &pv.candidates {
            let c = &p.candidates()[ci as usize];
            assert!(c.loc.0 >= 0 && c.loc.1 >= 0);
        }
    }

    #[test]
    fn shared_location_conflicts_are_found() {
        // Two vias two tracks apart on the same via layer: the
        // candidate between them is shared -> conflict.
        let mut nl = Netlist::new();
        nl.push(Net::new("a", vec![Pin::new(4, 4), Pin::new(4, 6)]));
        let mut sol = RoutingSolution::new(RoutingGrid::three_layer(16, 16), &nl);
        // Route: via up at (4,4), M2 east-ish? Simplest: two separate
        // pin vias joined by M2+M3.
        sol.set_route(
            NetId(0),
            RoutedNet::new(
                vec![
                    WireEdge::new(2, 4, 4, Axis::Vertical),
                    WireEdge::new(2, 4, 5, Axis::Vertical),
                ],
                vec![
                    Via::new(0, 4, 4),
                    Via::new(1, 4, 4),
                    Via::new(1, 4, 6),
                    Via::new(0, 4, 6),
                ],
            ),
        );
        let p = DviProblem::build(SadpKind::Sim, &sol);
        // The two via-layer-1 vias at (4,4) and (4,6) both may want
        // location (4,5).
        let shared: Vec<&Candidate> = p
            .candidates()
            .iter()
            .filter(|c| c.via_layer == 1 && c.loc == (4, 5))
            .collect();
        if shared.len() == 2 {
            let (a, b) = (shared[0], shared[1]);
            let ia = p.candidates().iter().position(|c| c == a).unwrap() as u32;
            let ib = p.candidates().iter().position(|c| c == b).unwrap() as u32;
            assert!(p.conflicts().contains(&(ia.min(ib), ia.max(ib))));
        }
    }

    #[test]
    fn layout_view_add_remove_round_trip() {
        let (_nl, sol) = single_net_solution();
        let route = sol.route(NetId(0)).unwrap().clone();
        let mut view = LayoutView::new(sol.grid().clone());
        assert!(!view.occupied_by_other(GridPoint::new(1, 5, 4), NetId(9)));
        view.add_route(NetId(0), &route);
        assert!(view.occupied_by_other(GridPoint::new(1, 5, 4), NetId(9)));
        assert!(!view.occupied_by_other(GridPoint::new(1, 5, 4), NetId(0)));
        assert!(view.via_at(0, 4, 4));
        view.remove_route(NetId(0), &route);
        assert!(!view.occupied_by_other(GridPoint::new(1, 5, 4), NetId(9)));
        assert!(!view.via_at(0, 4, 4));
    }

    #[test]
    fn via_layers_lists_layers() {
        let (_nl, sol) = single_net_solution();
        let p = DviProblem::build(SadpKind::Sim, &sol);
        assert_eq!(p.via_layers(), vec![0]);
        assert_eq!(p.existing_on_layer(0).len(), 2);
        assert!(p.existing_on_layer(1).is_empty());
    }
}
