//! The outcome of a TPL-aware DVI pass (either solver).

use std::time::Duration;

use sadp_trace::{Counter, Phase, RouteObserver};

/// Result of a TPL-aware double-via-insertion pass.
///
/// The paper's table columns map directly: `#DV` =
/// [`DviOutcome::dead_via_count`], `#UV` =
/// [`DviOutcome::uncolorable_count`], `CPU` = [`DviOutcome::runtime`].
#[derive(Debug, Clone, Default)]
pub struct DviOutcome {
    /// Indices (into the problem's candidate list) of the inserted
    /// redundant vias.
    pub inserted: Vec<u32>,
    /// TPL color of each single via of the problem (`None` =
    /// uncolorable).
    pub via_colors: Vec<Option<u8>>,
    /// TPL colors of the inserted redundant vias (parallel to
    /// `inserted`).
    pub inserted_colors: Vec<u8>,
    /// Single vias left without a redundant via.
    pub dead_via_count: usize,
    /// Vias that could not receive a TPL color (`#UV`).
    pub uncolorable_count: usize,
    /// Wall-clock time of the pass.
    pub runtime: Duration,
}

impl DviOutcome {
    /// Number of redundant vias inserted.
    pub fn inserted_count(&self) -> usize {
        self.inserted.len()
    }

    /// Protection rate: inserted / (inserted + dead).
    pub fn protection_rate(&self) -> f64 {
        let total = self.inserted.len() + self.dead_via_count;
        if total == 0 {
            1.0
        } else {
            self.inserted.len() as f64 / total as f64
        }
    }

    /// Emits the outcome's headline counts as [`Phase::Dvi`] counters.
    /// The `*_observed` solver entry points call this inside their
    /// phase span, so every DVI sink sees `#DV`, `#UV`, and the
    /// insertion count without post-processing.
    pub fn emit_counters(&self, obs: &mut impl RouteObserver) {
        obs.counter(Phase::Dvi, Counter::DeadVias, self.dead_via_count as i64);
        obs.counter(
            Phase::Dvi,
            Counter::UncolorableVias,
            self.uncolorable_count as i64,
        );
        obs.counter(
            Phase::Dvi,
            Counter::InsertedVias,
            self.inserted.len() as i64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_rate_handles_empty() {
        let o = DviOutcome::default();
        assert_eq!(o.protection_rate(), 1.0);
        assert_eq!(o.inserted_count(), 0);
    }

    #[test]
    fn outcome_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DviOutcome>();
    }

    #[test]
    fn protection_rate_counts() {
        let o = DviOutcome {
            inserted: vec![0, 1, 2],
            dead_via_count: 1,
            ..DviOutcome::default()
        };
        assert!((o.protection_rate() - 0.75).abs() < 1e-12);
    }
}
