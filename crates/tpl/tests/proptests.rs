//! Property-based tests of the TPL machinery.

use proptest::prelude::*;
use tpl_decomp::{exact_color, vias_conflict, welsh_powell, window_is_fvp, DecompGraph, FvpIndex};

proptest! {
    /// The incremental index predicts exactly what add_via produces.
    #[test]
    fn would_create_fvp_is_consistent(
        pts in proptest::collection::vec((0i32..12, 0i32..12), 1..20)
    ) {
        let mut idx = FvpIndex::new(12, 12);
        let mut last = None;
        for (x, y) in pts {
            if idx.contains(x, y) {
                continue;
            }
            let predicted = idx.would_create_fvp(x, y);
            idx.add_via(x, y);
            // Prediction == after insertion some window containing the
            // via is an FVP.
            let actual = idx
                .fvp_windows()
                .iter()
                .any(|&(ox, oy)| (ox..ox + 3).contains(&x) && (oy..oy + 3).contains(&y));
            prop_assert_eq!(predicted, actual, "at ({}, {})", x, y);
            last = Some((x, y));
        }
        // Removing and re-adding the last via restores the windows.
        if let Some((x, y)) = last {
            let with = idx.fvp_windows();
            idx.remove_via(x, y);
            idx.add_via(x, y);
            prop_assert_eq!(with, idx.fvp_windows());
        }
    }

    /// Exact coloring succeeds whenever greedy does, and both are
    /// proper.
    #[test]
    fn exact_dominates_greedy(
        pts in proptest::collection::vec((0i32..15, 0i32..15), 0..25)
    ) {
        let g = DecompGraph::from_positions(pts);
        let greedy = welsh_powell(&g, 3);
        prop_assert!(g.coloring_conflicts(&greedy.colors).is_empty());
        if greedy.is_complete() {
            let exact = exact_color(&g, 3);
            prop_assert!(exact.is_some());
            let wrapped: Vec<Option<u8>> = exact.unwrap().into_iter().map(Some).collect();
            prop_assert!(g.coloring_conflicts(&wrapped).is_empty());
        }
    }

    /// FVP windows of an index always correspond to actual uncolorable
    /// window patterns.
    #[test]
    fn fvp_windows_are_real(
        pts in proptest::collection::vec((0i32..10, 0i32..10), 1..30)
    ) {
        let mut idx = FvpIndex::new(10, 10);
        for (x, y) in &pts {
            idx.add_via(*x, *y);
        }
        for (ox, oy) in idx.fvp_windows() {
            let vias: Vec<(i32, i32)> = idx
                .vias()
                .filter(|(x, y)| (ox..ox + 3).contains(x) && (oy..oy + 3).contains(y))
                .map(|(x, y)| (x - ox, y - oy))
                .collect();
            prop_assert!(window_is_fvp(&vias));
        }
    }

    /// Graph edges are exactly the symmetric conflict relation.
    #[test]
    fn graph_edges_are_symmetric(
        pts in proptest::collection::vec((0i32..12, 0i32..12), 0..25)
    ) {
        let g = DecompGraph::from_positions(pts);
        for v in 0..g.len() {
            for &w in g.neighbors(v) {
                prop_assert!(g.neighbors(w as usize).contains(&(v as u32)));
                let (a, b) = (g.position(v), g.position(w as usize));
                prop_assert!(vias_conflict(b.0 - a.0, b.1 - a.1));
            }
        }
    }
}
