//! Forbidden via patterns (FVPs) and the incremental per-layer index.
//!
//! An FVP is a via pattern inside a 3×3 grid window that is not
//! 3-colorable under the same-color-pitch conflict model. The paper's
//! O(1) classification (§II-D):
//!
//! 1. six or more vias → FVP;
//! 2. five vias → FVP unless four of them occupy the window corners;
//! 3. four vias → FVP unless two occupy diagonally opposite corners;
//! 4. three or fewer vias → never an FVP.
//!
//! [`window_is_fvp`] implements these rules;
//! [`window_is_3colorable_bruteforce`] is the exhaustive reference the
//! test suite proves them equivalent to (all 512 window patterns).

use crate::conflict::vias_conflict;

/// Side length of the classification window (3×3 grid points).
pub const WINDOW: i32 = 3;

/// Classifies a via pattern inside a 3×3 window.
///
/// `vias` holds window-relative positions with coordinates in `0..3`;
/// duplicates are ignored. Returns `true` when the pattern is a
/// forbidden via pattern (not 3-colorable).
///
/// # Panics
///
/// Panics (in debug builds) if a position lies outside the window.
///
/// ```
/// use tpl_decomp::window_is_fvp;
/// // Four corners plus center: 3-colorable (paper Fig. 7(a)-like).
/// assert!(!window_is_fvp(&[(0, 0), (2, 0), (0, 2), (2, 2), (1, 1)]));
/// // Four vias, no diagonal corner pair: FVP (Fig. 7(d)).
/// assert!(window_is_fvp(&[(0, 0), (1, 0), (0, 1), (1, 1)]));
/// ```
pub fn window_is_fvp(vias: &[(i32, i32)]) -> bool {
    let mut set = [[false; 3]; 3];
    let mut n = 0usize;
    for &(x, y) in vias {
        debug_assert!((0..WINDOW).contains(&x) && (0..WINDOW).contains(&y));
        if !set[x as usize][y as usize] {
            set[x as usize][y as usize] = true;
            n += 1;
        }
    }
    match n {
        0..=3 => false,
        4 => {
            // Colorable iff some diagonally opposite corner pair is
            // occupied.
            let diag_a = set[0][0] && set[2][2];
            let diag_b = set[2][0] && set[0][2];
            !(diag_a || diag_b)
        }
        5 => {
            // Colorable iff all four corners are occupied.
            !(set[0][0] && set[2][0] && set[0][2] && set[2][2])
        }
        _ => true,
    }
}

/// Exhaustive 3-coloring of the window conflict graph — the reference
/// implementation the rule-based classifier is verified against.
pub fn window_is_3colorable_bruteforce(vias: &[(i32, i32)]) -> bool {
    let mut pts: Vec<(i32, i32)> = vias.to_vec();
    pts.sort_unstable();
    pts.dedup();
    let n = pts.len();
    if n <= 3 {
        return true;
    }
    // Backtracking over 3 colors.
    fn assign(pts: &[(i32, i32)], colors: &mut Vec<u8>, i: usize) -> bool {
        if i == pts.len() {
            return true;
        }
        'colors: for c in 0..3u8 {
            for j in 0..i {
                let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                if colors[j] == c && vias_conflict(dx, dy) {
                    continue 'colors;
                }
            }
            colors[i] = c;
            if assign(pts, colors, i + 1) {
                return true;
            }
        }
        false
    }
    let mut colors = vec![0u8; n];
    assign(&pts, &mut colors, 0)
}

/// A flat bitset over grid cells.
#[derive(Debug, Clone, Default)]
struct BitGrid {
    words: Vec<u64>,
}

impl BitGrid {
    fn new(cells: usize) -> BitGrid {
        BitGrid {
            words: vec![0; cells.div_ceil(64)],
        }
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Sets bit `i`; returns `true` if it was previously clear.
    #[inline]
    fn set(&mut self, i: usize) -> bool {
        let w = &mut self.words[i >> 6];
        let m = 1u64 << (i & 63);
        let was_clear = *w & m == 0;
        *w |= m;
        was_clear
    }

    /// Clears bit `i`; returns `true` if it was previously set.
    #[inline]
    fn clear(&mut self, i: usize) -> bool {
        let w = &mut self.words[i >> 6];
        let m = 1u64 << (i & 63);
        let was_set = *w & m != 0;
        *w &= !m;
        was_set
    }

    /// Iterates over set bit indices in ascending order.
    fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some((wi << 6) | b)
                }
            })
        })
    }
}

/// The window origins `(ox, oy)` whose 3×3 area contains `(x, y)` on a
/// `w × h` grid.
fn windows_touching(w: i32, h: i32, x: i32, y: i32) -> impl Iterator<Item = (i32, i32)> {
    let x0 = (x - WINDOW + 1).max(0);
    let x1 = x.min(w - WINDOW);
    let y0 = (y - WINDOW + 1).max(0);
    let y1 = y.min(h - WINDOW);
    (x0..=x1).flat_map(move |ox| (y0..=y1).map(move |oy| (ox, oy)))
}

/// An incremental FVP index over one via layer.
///
/// Tracks the set of vias on the layer and the set of 3×3 windows
/// whose current pattern is an FVP. Adding or removing a via updates
/// at most nine windows (O(1)); the full FVP list is available at any
/// time, which is exactly what the paper's via-layer TPL violation
/// removal R&R (Algorithm 2) needs.
///
/// Both the via set and the FVP-window set are dense bitsets indexed
/// in x-major order, so membership tests are single word reads and
/// iteration yields positions in sorted `(x, y)` order. FVP windows
/// are additionally tracked in an epoch-stamped dirty list — a
/// superset of the currently-set origins, with each origin pushed at
/// most once per epoch — so [`FvpIndex::fvp_windows`] is proportional
/// to the number of recently-violating windows, not the grid area.
///
/// ```
/// use tpl_decomp::FvpIndex;
///
/// let mut idx = FvpIndex::new(10, 10);
/// for &(x, y) in &[(1, 1), (3, 1), (2, 2)] {
///     idx.add_via(x, y);
/// }
/// assert!(idx.fvp_windows().is_empty());
/// idx.add_via(2, 1); // four vias, no diagonal corner pair -> FVP
/// assert!(!idx.fvp_windows().is_empty());
/// idx.remove_via(2, 1);
/// assert!(idx.fvp_windows().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct FvpIndex {
    width: i32,
    height: i32,
    vias: BitGrid,
    fvp: BitGrid,
    via_count: usize,
    fvp_count: usize,
    /// Superset of the set FVP origins; rebuilt when it grows well
    /// past `fvp_count`.
    dirty: Vec<(i32, i32)>,
    /// Per-origin epoch stamp deduplicating `dirty` pushes.
    stamp: Vec<u32>,
    epoch: u32,
}

impl FvpIndex {
    /// Creates an empty index for a `width × height` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than the window size.
    pub fn new(width: i32, height: i32) -> FvpIndex {
        assert!(
            width >= WINDOW && height >= WINDOW,
            "grid must be at least {WINDOW}x{WINDOW}"
        );
        let cells = (width * height) as usize;
        FvpIndex {
            width,
            height,
            vias: BitGrid::new(cells),
            fvp: BitGrid::new(cells),
            via_count: 0,
            fvp_count: 0,
            dirty: Vec::new(),
            stamp: vec![u32::MAX; cells],
            epoch: 0,
        }
    }

    /// The x-major cell index of `(x, y)` (ascending index order is
    /// lexicographic `(x, y)` order).
    #[inline]
    fn cell(&self, x: i32, y: i32) -> usize {
        debug_assert!(x >= 0 && x < self.width && y >= 0 && y < self.height);
        (x * self.height + y) as usize
    }

    /// Number of vias currently in the index.
    pub fn via_count(&self) -> usize {
        self.via_count
    }

    /// `true` if a via is present at `(x, y)`.
    pub fn contains(&self, x: i32, y: i32) -> bool {
        self.vias.get(self.cell(x, y))
    }

    /// Iterates over all vias in sorted `(x, y)` order.
    pub fn vias(&self) -> impl Iterator<Item = (i32, i32)> + '_ {
        let h = self.height;
        self.vias
            .iter_set()
            .map(move |i| ((i as i32) / h, (i as i32) % h))
    }

    /// The origins of all windows whose pattern is currently an FVP,
    /// in sorted `(x, y)` order.
    pub fn fvp_windows(&self) -> Vec<(i32, i32)> {
        let mut out: Vec<(i32, i32)> = self
            .dirty
            .iter()
            .copied()
            .filter(|&(ox, oy)| self.fvp.get(self.cell(ox, oy)))
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of windows whose pattern is currently an FVP.
    pub fn fvp_window_count(&self) -> usize {
        self.fvp_count
    }

    /// `true` if window `(ox, oy)` is currently an FVP.
    pub fn is_fvp_window(&self, ox: i32, oy: i32) -> bool {
        self.fvp.get(self.cell(ox, oy))
    }

    /// The window-relative via pattern of window `(ox, oy)`.
    fn window_pattern(&self, ox: i32, oy: i32) -> Vec<(i32, i32)> {
        let mut out = Vec::with_capacity(9);
        for dx in 0..WINDOW {
            for dy in 0..WINDOW {
                if self.vias.get(self.cell(ox + dx, oy + dy)) {
                    out.push((dx, dy));
                }
            }
        }
        out
    }

    fn refresh_window(&mut self, ox: i32, oy: i32) {
        let cell = self.cell(ox, oy);
        let pat = self.window_pattern(ox, oy);
        if window_is_fvp(&pat) {
            if self.fvp.set(cell) {
                self.fvp_count += 1;
            }
            if self.stamp[cell] != self.epoch {
                self.stamp[cell] = self.epoch;
                self.dirty.push((ox, oy));
            }
        } else if self.fvp.clear(cell) {
            self.fvp_count -= 1;
        }
    }

    /// Rebuilds the dirty list from the currently-set FVP origins once
    /// stale entries dominate it.
    fn maybe_compact_dirty(&mut self) {
        if self.dirty.len() <= 4 * self.fvp_count + 64 {
            return;
        }
        self.epoch = self.epoch.wrapping_add(1);
        let mut live = Vec::with_capacity(self.fvp_count);
        for i in 0..self.dirty.len() {
            let (ox, oy) = self.dirty[i];
            let cell = self.cell(ox, oy);
            if self.fvp.get(cell) && self.stamp[cell] != self.epoch {
                self.stamp[cell] = self.epoch;
                live.push((ox, oy));
            }
        }
        self.dirty = live;
    }

    /// Adds a via, updating the affected windows. Returns `false` if a
    /// via was already present there.
    pub fn add_via(&mut self, x: i32, y: i32) -> bool {
        if !self.vias.set(self.cell(x, y)) {
            return false;
        }
        self.via_count += 1;
        for (ox, oy) in windows_touching(self.width, self.height, x, y) {
            self.refresh_window(ox, oy);
        }
        self.maybe_compact_dirty();
        true
    }

    /// Removes a via, updating the affected windows. Returns `false`
    /// if no via was present there.
    pub fn remove_via(&mut self, x: i32, y: i32) -> bool {
        if !self.vias.clear(self.cell(x, y)) {
            return false;
        }
        self.via_count -= 1;
        for (ox, oy) in windows_touching(self.width, self.height, x, y) {
            self.refresh_window(ox, oy);
        }
        self.maybe_compact_dirty();
        true
    }

    /// Would inserting a via at `(x, y)` create at least one FVP?
    ///
    /// This is the check behind the *blocked via locations* of
    /// Algorithm 2 (Fig. 10) and behind the FVP guard of the DVI
    /// heuristic. The position itself may be empty or occupied; an
    /// occupied position trivially returns the current state.
    pub fn would_create_fvp(&self, x: i32, y: i32) -> bool {
        if self.contains(x, y) {
            return windows_touching(self.width, self.height, x, y)
                .any(|(ox, oy)| self.fvp.get(self.cell(ox, oy)));
        }
        for (ox, oy) in windows_touching(self.width, self.height, x, y) {
            let mut pat = self.window_pattern(ox, oy);
            pat.push((x - ox, y - oy));
            if window_is_fvp(&pat) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The rule-based classifier agrees with exhaustive 3-coloring on
    /// all 512 possible window patterns — the rules of §II-D are
    /// exactly 3-colorability under the conflict model.
    #[test]
    fn rules_equal_bruteforce_on_all_patterns() {
        for mask in 0u32..512 {
            let mut vias = Vec::new();
            for bit in 0..9 {
                if mask & (1 << bit) != 0 {
                    vias.push((bit % 3, bit / 3));
                }
            }
            assert_eq!(
                window_is_fvp(&vias),
                !window_is_3colorable_bruteforce(&vias),
                "pattern {mask:#b} misclassified"
            );
        }
    }

    #[test]
    fn paper_figure7_examples() {
        // Fig. 7(a): 5 vias with 4 on corners — not an FVP.
        assert!(!window_is_fvp(&[(0, 0), (2, 0), (0, 2), (2, 2), (1, 1)]));
        // Fig. 7(b): 5 vias not on four corners — FVP.
        assert!(window_is_fvp(&[(0, 0), (2, 0), (0, 2), (1, 1), (1, 2)]));
        // Fig. 7(c): 4 vias with a diagonal corner pair — not an FVP.
        assert!(!window_is_fvp(&[(0, 0), (2, 2), (1, 0), (0, 1)]));
        // Fig. 7(d): 4 vias without a diagonal corner pair — FVP.
        assert!(window_is_fvp(&[(0, 0), (2, 0), (1, 1), (1, 2)]));
    }

    /// The paper's motivation against the via-spacing rule of refs
    /// [18]/[19]: the diamond pattern keeps every pair at Manhattan
    /// distance 2 (no forbidden adjacent positions) yet is an FVP —
    /// spacing rules alone do not ensure TPL decomposability.
    #[test]
    fn spacing_rule_compliant_diamond_is_fvp() {
        let diamond = [(0, 1), (1, 0), (1, 2), (2, 1)];
        for i in 0..4 {
            for j in (i + 1)..4 {
                let (a, b): ((i32, i32), (i32, i32)) = (diamond[i], diamond[j]);
                assert!((a.0 - b.0).abs() + (a.1 - b.1).abs() >= 2);
            }
        }
        assert!(window_is_fvp(&diamond));
        assert!(!window_is_3colorable_bruteforce(&diamond));
    }

    #[test]
    fn six_vias_always_fvp() {
        assert!(window_is_fvp(&[
            (0, 0),
            (2, 0),
            (0, 2),
            (2, 2),
            (1, 1),
            (1, 0)
        ]));
    }

    #[test]
    fn duplicates_are_ignored() {
        assert!(!window_is_fvp(&[(0, 0), (0, 0), (1, 1), (1, 1)]));
    }

    #[test]
    fn index_tracks_additions_and_removals() {
        let mut idx = FvpIndex::new(8, 8);
        assert_eq!(idx.via_count(), 0);
        // Build Fig. 7(d) at origin (2,2): FVP.
        for &(x, y) in &[(2, 2), (4, 2), (3, 3), (3, 4)] {
            assert!(idx.add_via(x, y));
        }
        assert!(idx.fvp_windows().contains(&(2, 2)));
        assert!(!idx.add_via(2, 2), "double insert rejected");
        assert!(idx.remove_via(3, 3));
        assert!(idx.fvp_windows().is_empty());
        assert!(!idx.remove_via(3, 3));
        assert_eq!(idx.via_count(), 3);
    }

    #[test]
    fn would_create_fvp_predicts() {
        let mut idx = FvpIndex::new(8, 8);
        for &(x, y) in &[(2, 2), (4, 2), (3, 3)] {
            idx.add_via(x, y);
        }
        // Adding (3,4) completes Fig. 7(d).
        assert!(idx.would_create_fvp(3, 4));
        // Adding the far diagonal corner (4,4) gives 4 vias *with* a
        // diagonal pair (2,2)-(4,4): fine.
        assert!(!idx.would_create_fvp(4, 4));
        // The prediction matches reality.
        idx.add_via(3, 4);
        assert!(!idx.fvp_windows().is_empty());
    }

    #[test]
    fn windows_clamp_at_borders() {
        let mut idx = FvpIndex::new(3, 3);
        // Only one window exists on a 3x3 grid.
        for &(x, y) in &[(0, 0), (1, 0), (0, 1), (1, 1)] {
            idx.add_via(x, y);
        }
        assert_eq!(idx.fvp_windows().len(), 1);
        assert!(idx.fvp_windows().contains(&(0, 0)));
    }

    #[test]
    fn dense_line_of_vias_is_not_fvp() {
        // A full row of 3 vias in every window: 3 vias per window,
        // never an FVP (they take the 3 different colors).
        let mut idx = FvpIndex::new(10, 10);
        for x in 0..10 {
            idx.add_via(x, 5);
        }
        assert!(idx.fvp_windows().is_empty());
    }
}
