//! 3-coloring of the decomposition graph.
//!
//! The paper's fast check is a greedy Welsh–Powell pass: vertices in
//! non-increasing degree order, each taking the smallest color not
//! used by a colored neighbor; vertices with no free color are
//! reported *uncolorable* (paper: "#UV"). An exact backtracking
//! colorer over connected components serves as the optimality
//! reference in tests and in the ILP decoder.

use crate::graph::DecompGraph;

/// The outcome of a coloring pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringOutcome {
    /// Color of each vertex (`None` = uncolorable by this pass).
    pub colors: Vec<Option<u8>>,
    /// Vertices left uncolored.
    pub uncolorable: Vec<u32>,
}

impl ColoringOutcome {
    /// `true` when every vertex received a color.
    pub fn is_complete(&self) -> bool {
        self.uncolorable.is_empty()
    }

    /// Number of uncolored vertices (the paper's `#UV` metric).
    pub fn uncolored_count(&self) -> usize {
        self.uncolorable.len()
    }
}

/// Greedy Welsh–Powell coloring with `num_colors` colors.
///
/// Deterministic: ties in degree break by vertex index.
///
/// ```
/// use tpl_decomp::{welsh_powell, DecompGraph};
/// // A triangle of mutually conflicting vias: exactly 3 colors.
/// let g = DecompGraph::from_positions([(0, 0), (1, 0), (0, 1)]);
/// let out = welsh_powell(&g, 3);
/// assert!(out.is_complete());
/// ```
pub fn welsh_powell(graph: &DecompGraph, num_colors: u8) -> ColoringOutcome {
    let n = graph.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v as usize)), v));
    let mut colors: Vec<Option<u8>> = vec![None; n];
    let mut uncolorable = Vec::new();
    // One neighbor-color buffer for the whole pass — this runs on the
    // router's audit hot path once per vertex, so it is hoisted out of
    // the loop and only the entries a vertex touched are cleared.
    let mut used = [false; 256];
    let mut touched: Vec<u8> = Vec::with_capacity(8);
    for &v in &order {
        for &w in graph.neighbors(v as usize) {
            if let Some(c) = colors[w as usize] {
                if !used[c as usize] {
                    used[c as usize] = true;
                    touched.push(c);
                }
            }
        }
        match (0..num_colors).find(|&c| !used[c as usize]) {
            Some(c) => colors[v as usize] = Some(c),
            None => uncolorable.push(v),
        }
        for c in touched.drain(..) {
            used[c as usize] = false;
        }
    }
    uncolorable.sort_unstable();
    ColoringOutcome {
        colors,
        uncolorable,
    }
}

/// Exact coloring by backtracking, component by component.
///
/// Returns a complete coloring if one exists, or `None` when the
/// graph is not `num_colors`-colorable. Intended for verification and
/// for the small components arising on via layers; worst-case time is
/// exponential in the largest component.
pub fn exact_color(graph: &DecompGraph, num_colors: u8) -> Option<Vec<u8>> {
    let n = graph.len();
    let mut colors: Vec<Option<u8>> = vec![None; n];
    for comp in graph.components() {
        // Order the component by degree (descending) for better
        // pruning.
        let mut order = comp.clone();
        order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v as usize)));
        if !backtrack(graph, &order, 0, num_colors, &mut colors) {
            return None;
        }
    }
    Some(colors.into_iter().map(|c| c.expect("complete")).collect())
}

fn backtrack(
    graph: &DecompGraph,
    order: &[u32],
    i: usize,
    num_colors: u8,
    colors: &mut Vec<Option<u8>>,
) -> bool {
    if i == order.len() {
        return true;
    }
    let v = order[i] as usize;
    let mut used = [false; 256];
    for &w in graph.neighbors(v) {
        if let Some(c) = colors[w as usize] {
            used[c as usize] = true;
        }
    }
    // Symmetry breaking: the first vertex of a component only tries
    // color 0; the rest try all.
    let limit = if i == 0 { 1 } else { num_colors };
    for c in 0..limit.max(1) {
        if used[c as usize] {
            continue;
        }
        colors[v] = Some(c);
        if backtrack(graph, order, i + 1, num_colors, colors) {
            return true;
        }
        colors[v] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A "wheel-like via pattern" (paper Fig. 11): FVP-free — every
    /// 3×3 window is individually 3-colorable — yet the global
    /// decomposition graph is not. Under our derived same-color pitch
    /// the smallest such patterns have 6 vias (found by exhaustive
    /// search; the paper sketches 5- and 7-via variants under its
    /// exact pitch).
    pub(crate) const WHEEL6: [(i32, i32); 6] = [(0, 0), (0, 2), (1, 1), (1, 3), (2, 0), (3, 2)];

    #[test]
    fn wheel_pattern_is_fvp_free() {
        use crate::fvp::FvpIndex;
        let mut idx = FvpIndex::new(8, 8);
        for &(x, y) in &WHEEL6 {
            idx.add_via(x + 2, y + 2);
        }
        assert!(idx.fvp_windows().is_empty());
    }

    #[test]
    fn wheel_is_not_3colorable_but_welsh_powell_reports_it() {
        let g = DecompGraph::from_positions(WHEEL6);
        assert!(exact_color(&g, 3).is_none());
        assert!(exact_color(&g, 4).is_some());
        let out = welsh_powell(&g, 3);
        assert!(!out.is_complete());
        assert!(out.uncolored_count() >= 1);
    }

    #[test]
    fn triangle_uses_three_colors() {
        let g = DecompGraph::from_positions([(0, 0), (1, 0), (0, 1)]);
        let out = welsh_powell(&g, 3);
        assert!(out.is_complete());
        let cs: Vec<u8> = out.colors.iter().map(|c| c.unwrap()).collect();
        assert_ne!(cs[0], cs[1]);
        assert_ne!(cs[0], cs[2]);
        assert_ne!(cs[1], cs[2]);
        // Two colors are not enough.
        assert!(!welsh_powell(&g, 2).is_complete());
        assert!(exact_color(&g, 2).is_none());
    }

    #[test]
    fn colorings_are_proper() {
        // A few structured layouts; every produced coloring must be
        // proper.
        let layouts: Vec<Vec<(i32, i32)>> = vec![
            (0..20).map(|i| (i, 0)).collect(),
            (0..10).flat_map(|i| vec![(3 * i, 0), (3 * i, 3)]).collect(),
            vec![(0, 0), (2, 0), (0, 2), (2, 2), (1, 1)],
        ];
        for pts in layouts {
            let g = DecompGraph::from_positions(pts);
            let out = welsh_powell(&g, 3);
            assert!(g.coloring_conflicts(&out.colors).is_empty());
            if let Some(exact) = exact_color(&g, 3) {
                let wrapped: Vec<Option<u8>> = exact.into_iter().map(Some).collect();
                assert!(g.coloring_conflicts(&wrapped).is_empty());
            }
        }
    }

    #[test]
    fn exact_matches_greedy_on_easy_graphs() {
        // On an FVP-free sparse layout both succeed.
        let pts: Vec<(i32, i32)> = (0..15).map(|i| (2 * i, (i % 3) * 4)).collect();
        let g = DecompGraph::from_positions(pts);
        assert!(welsh_powell(&g, 3).is_complete());
        assert!(exact_color(&g, 3).is_some());
    }

    /// `num_colors = 0` must degrade gracefully: every vertex is
    /// reported uncolorable, no panic, no infinite loop — and the
    /// hoisted neighbor-color buffer stays consistent across vertices.
    #[test]
    fn zero_colors_reports_every_vertex_uncolorable() {
        let g = DecompGraph::from_positions([(0, 0), (1, 0), (0, 1), (10, 10)]);
        let out = welsh_powell(&g, 0);
        assert!(!out.is_complete());
        assert_eq!(out.uncolored_count(), 4);
        assert_eq!(out.uncolorable, vec![0, 1, 2, 3]);
        assert!(out.colors.iter().all(Option::is_none));
    }

    /// The shared `used` buffer must be fully cleared between
    /// vertices: color a dense layout and re-verify properness (a
    /// stale entry would force needless uncolorables or improper
    /// colors).
    #[test]
    fn hoisted_buffer_is_cleared_between_vertices() {
        let pts: Vec<(i32, i32)> = (0..8)
            .flat_map(|i| vec![(2 * i, 0), (2 * i + 1, 1), (2 * i, 2)])
            .collect();
        let g = DecompGraph::from_positions(pts);
        let out = welsh_powell(&g, 3);
        assert!(g.coloring_conflicts(&out.colors).is_empty());
        // An isolated far-away vertex after dense ones must get color 0.
        let g2 = DecompGraph::from_positions([(0, 0), (1, 0), (0, 1), (50, 50)]);
        let out2 = welsh_powell(&g2, 3);
        assert_eq!(out2.colors[3], Some(0));
    }

    #[test]
    fn empty_graph_is_trivially_colored() {
        let g = DecompGraph::from_positions(std::iter::empty());
        assert!(welsh_powell(&g, 3).is_complete());
        assert_eq!(exact_color(&g, 3), Some(vec![]));
    }
}
