//! The TPL decomposition graph of one via layer.
//!
//! Each via is a vertex; an edge joins two vias within the same-color
//! via pitch. TPL layout decomposition is 3-coloring this graph.

use std::collections::HashMap;

use crate::conflict::conflict_offsets;

/// The decomposition graph of a set of via positions.
///
/// Construction is O(n) using a position hash and the constant
/// conflict neighborhood.
///
/// ```
/// use tpl_decomp::DecompGraph;
/// let g = DecompGraph::from_positions([(0, 0), (1, 0), (5, 5)]);
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.degree(0), 1); // (0,0) - (1,0)
/// assert_eq!(g.degree(2), 0); // (5,5) is isolated
/// ```
#[derive(Debug, Clone, Default)]
pub struct DecompGraph {
    positions: Vec<(i32, i32)>,
    adjacency: Vec<Vec<u32>>,
}

impl DecompGraph {
    /// Builds the graph from via positions. Duplicate positions are
    /// collapsed into one vertex.
    pub fn from_positions<I>(positions: I) -> DecompGraph
    where
        I: IntoIterator<Item = (i32, i32)>,
    {
        let mut index: HashMap<(i32, i32), u32> = HashMap::new();
        let mut pos = Vec::new();
        for p in positions {
            index.entry(p).or_insert_with(|| {
                pos.push(p);
                (pos.len() - 1) as u32
            });
        }
        let mut adjacency = vec![Vec::new(); pos.len()];
        for (i, &(x, y)) in pos.iter().enumerate() {
            for (dx, dy) in conflict_offsets() {
                if let Some(&j) = index.get(&(x + dx, y + dy)) {
                    adjacency[i].push(j);
                }
            }
            adjacency[i].sort_unstable();
        }
        DecompGraph {
            positions: pos,
            adjacency,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The via position of vertex `v`.
    pub fn position(&self, v: usize) -> (i32, i32) {
        self.positions[v]
    }

    /// Neighbors of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjacency[v]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Splits the vertex set into connected components.
    pub fn components(&self) -> Vec<Vec<u32>> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            let mut comp = vec![s as u32];
            seen[s] = true;
            let mut stack = vec![s as u32];
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v as usize) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        comp.push(w);
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// Validates a (partial) coloring: every pair of adjacent colored
    /// vertices must differ. Returns offending vertex pairs.
    pub fn coloring_conflicts(&self, colors: &[Option<u8>]) -> Vec<(u32, u32)> {
        let mut bad = Vec::new();
        for v in 0..self.len() {
            if let Some(cv) = colors[v] {
                for &w in self.neighbors(v) {
                    if (w as usize) > v {
                        if let Some(cw) = colors[w as usize] {
                            if cv == cw {
                                bad.push((v as u32, w));
                            }
                        }
                    }
                }
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::vias_conflict;

    #[test]
    fn edges_match_conflict_predicate() {
        let pts = [(0, 0), (1, 1), (2, 2), (3, 0), (0, 2)];
        let g = DecompGraph::from_positions(pts);
        for i in 0..g.len() {
            for j in 0..g.len() {
                let (a, b) = (g.position(i), g.position(j));
                let expect = vias_conflict(b.0 - a.0, b.1 - a.1);
                assert_eq!(
                    g.neighbors(i).contains(&(j as u32)),
                    expect,
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn duplicates_collapse() {
        let g = DecompGraph::from_positions([(0, 0), (0, 0), (1, 0)]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn components_partition() {
        let g = DecompGraph::from_positions([(0, 0), (1, 0), (10, 10), (11, 10), (20, 0)]);
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.len());
    }

    #[test]
    fn coloring_conflicts_detects_violation() {
        let g = DecompGraph::from_positions([(0, 0), (1, 0)]);
        assert!(g.coloring_conflicts(&[Some(0), Some(1)]).is_empty());
        assert_eq!(g.coloring_conflicts(&[Some(0), Some(0)]).len(), 1);
        // Uncolored vertices never conflict.
        assert!(g.coloring_conflicts(&[Some(0), None]).is_empty());
    }
}
