//! The same-color via pitch conflict model.
//!
//! The paper defines the *same-color via pitch* as the minimum
//! center-to-center distance at which two vias of one via layer may
//! share a TPL mask, and states it is "slightly larger than two times
//! the routing track pitch". Combined with the forbidden-via-pattern
//! rules of §II-D, the induced conflict predicate is exactly
//!
//! > vias at track offset `(dx, dy)` conflict iff `dx² + dy² ≤ 5`,
//!
//! i.e. every pair inside a 3×3 window except the full diagonals
//! (distance `2√2 ≈ 2.83` > pitch) — see `DESIGN.md` §2.4 for the
//! derivation, and the exhaustive test in [`crate::fvp`] proving the
//! equivalence with the paper's FVP classification.

/// Squared same-color via pitch in track units: conflicts are pairs
/// with squared distance **at most** this value.
pub const SAME_COLOR_PITCH_SQ: i32 = 5;

/// All nonzero offsets `(dx, dy)` at which two vias conflict.
///
/// 20 offsets: the 24 cells of the surrounding 5×5-restricted
/// neighborhood minus the four `(±2, ±2)` diagonals.
pub const CONFLICT_OFFSETS: [(i32, i32); 20] = [
    (-2, -1),
    (-2, 0),
    (-2, 1),
    (-1, -2),
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (-1, 2),
    (0, -2),
    (0, -1),
    (0, 1),
    (0, 2),
    (1, -2),
    (1, -1),
    (1, 0),
    (1, 1),
    (1, 2),
    (2, -1),
    (2, 0),
    (2, 1),
];

/// `true` if two vias of one via layer separated by `(dx, dy)` tracks
/// are within the same-color via pitch (i.e. must get different TPL
/// colors).
///
/// A via never conflicts with itself: `vias_conflict(0, 0)` is
/// `false`.
///
/// ```
/// use tpl_decomp::vias_conflict;
/// assert!(vias_conflict(0, 1));
/// assert!(vias_conflict(-2, 1));
/// assert!(!vias_conflict(0, 0));
/// assert!(!vias_conflict(-2, -2));
/// ```
#[inline]
pub fn vias_conflict(dx: i32, dy: i32) -> bool {
    let d2 = dx * dx + dy * dy;
    d2 > 0 && d2 <= SAME_COLOR_PITCH_SQ
}

/// Iterates over the conflict offsets (a convenience over
/// [`CONFLICT_OFFSETS`]).
pub fn conflict_offsets() -> impl Iterator<Item = (i32, i32)> {
    CONFLICT_OFFSETS.iter().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_match_predicate() {
        let mut expected = Vec::new();
        for dx in -3..=3 {
            for dy in -3..=3 {
                if vias_conflict(dx, dy) {
                    expected.push((dx, dy));
                }
            }
        }
        let mut actual: Vec<(i32, i32)> = CONFLICT_OFFSETS.to_vec();
        actual.sort_unstable();
        expected.sort_unstable();
        assert_eq!(actual, expected);
    }

    #[test]
    fn predicate_is_symmetric() {
        for dx in -3..=3 {
            for dy in -3..=3 {
                assert_eq!(vias_conflict(dx, dy), vias_conflict(-dx, -dy));
                assert_eq!(vias_conflict(dx, dy), vias_conflict(dy, dx));
            }
        }
    }

    #[test]
    fn boundary_cases() {
        // Distance 2 (= twice the track pitch) conflicts: pitch is
        // "slightly larger than" 2.
        assert!(vias_conflict(2, 0));
        // (2,1): sqrt(5) ≈ 2.24 still conflicts.
        assert!(vias_conflict(2, 1));
        // Full diagonal 2√2 ≈ 2.83 does not.
        assert!(!vias_conflict(2, 2));
        // Distance 3 does not.
        assert!(!vias_conflict(3, 0));
    }
}
