//! # tpl-decomp
//!
//! Triple-patterning-lithography (TPL) decomposition machinery for via
//! layers, following §II-D and §III-C/D of the paper:
//!
//! * the **same-color via pitch** conflict model — two vias on the same
//!   via layer conflict (cannot share a mask) iff `dx² + dy² ≤ 5` in
//!   track units, the unique predicate consistent with the paper's
//!   forbidden-via-pattern rules (see `DESIGN.md` §2.4);
//! * the O(1) **forbidden via pattern** (FVP) classifier over 3×3
//!   windows, plus an incremental [`FvpIndex`] that a router can keep
//!   up to date in O(1) per via insertion/removal;
//! * the **decomposition graph** over a via layer and its 3-coloring:
//!   the greedy Welsh–Powell pass the paper uses as its fast check and
//!   an exact backtracking colorer used as a reference.
//!
//! ```
//! use tpl_decomp::{vias_conflict, window_is_fvp};
//!
//! assert!(vias_conflict(1, 0));
//! assert!(vias_conflict(2, 1));
//! assert!(!vias_conflict(2, 2)); // full diagonal of the 3x3 window
//! assert!(!vias_conflict(3, 0)); // beyond the same-color pitch
//!
//! // Six or more vias in a 3x3 window can never be 3-colored.
//! let vias = [(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)];
//! assert!(window_is_fvp(&vias));
//! ```

#![warn(missing_docs)]

pub mod coloring;
pub mod conflict;
pub mod fvp;
pub mod graph;

pub use coloring::{exact_color, welsh_powell, ColoringOutcome};
pub use conflict::{conflict_offsets, vias_conflict, CONFLICT_OFFSETS};
pub use fvp::{window_is_3colorable_bruteforce, window_is_fvp, FvpIndex, WINDOW};
pub use graph::DecompGraph;
