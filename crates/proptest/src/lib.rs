//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this local
//! path crate reimplements the subset of proptest the workspace's
//! property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map` / `prop_flat_map`, integer-range and tuple strategies,
//! [`collection::vec`], [`any`], [`Just`], [`ProptestConfig`], and the
//! `prop_assert*` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case
//! panics immediately with the seed-derived case number in the
//! standard assertion message. Case generation is deterministic per
//! test-function name, so failures reproduce exactly.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// An RNG seeded from the test name (stable across runs), with an
    /// optional override via the `PROPTEST_SEED` environment variable.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra.rotate_left(17);
            }
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator (upstream proptest's `Strategy`, sans shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (rejection sampling; panics
    /// after 1000 consecutive rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive cases: {}",
            self.whence
        )
    }
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (upstream
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A vector-length specification: an exact size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange(core::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..r.end() + 1)
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let range = &self.size.0;
            let n = if range.start + 1 < range.end {
                rng.0.gen_range(range.clone())
            } else {
                range.start
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Asserts a condition inside a property (panics on failure, like a
/// plain `assert!` — this shim has no shrinking to resume).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("t1");
        let s = (0i32..10, 5u8..=6, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!(b == 5 || b == 6);
        }
    }

    #[test]
    fn map_flat_map_and_vec_compose() {
        let mut rng = crate::TestRng::deterministic("t2");
        let s = (1usize..4).prop_flat_map(|n| {
            crate::collection::vec(0i32..100, n..n + 1).prop_map(move |v| (n, v))
        });
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = crate::TestRng::deterministic("same");
        let mut b = crate::TestRng::deterministic("same");
        let s = crate::collection::vec(0u64..1_000_000, 3..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, Just, and asserts all work.
        #[test]
        fn macro_smoke(x in 0i32..50, y in Just(7i32), flip in any::<bool>()) {
            prop_assert!(x < 50);
            prop_assert_eq!(y, 7);
            prop_assert_ne!(x - y, x, "flip={}", flip);
        }
    }
}
