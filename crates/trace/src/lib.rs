//! # sadp-trace
//!
//! Phase-level observability for the SADP-aware routing flow. The
//! paper's evaluation (Tables III/IV CPU columns, the R&R iteration
//! behavior across the four arms of Fig. 8) is all *per-phase*
//! measurement; this crate provides the event vocabulary and sinks
//! that let the router, the DVI solvers, and the audits report those
//! measurements first-class instead of every caller re-deriving them
//! with external stopwatches.
//!
//! The design is a static callback interface, not a logging framework:
//!
//! * [`RouteObserver`] — the trait instrumented code calls into.
//!   Every method has an empty default body, and call sites take
//!   `&mut impl RouteObserver`, so the no-op sink monomorphizes to
//!   nothing (verified by the `bench_search` ns/connection gate
//!   against `BENCH_search.json`).
//! * [`Phase`] — the six phase-scoped spans of the flow: initial
//!   routing, congestion R&R, TPL-violation removal, coloring fix,
//!   DVI, and audits.
//! * [`Counter`] — per-iteration counter events inside a phase
//!   (reroutes, failures, cost deltas, FVP hits, dead-via counts, …).
//! * [`NoopObserver`] — the zero-overhead sink.
//! * [`EventLog`] — records the raw event sequence; the golden-trace
//!   tests assert on it.
//! * [`JsonReport`] — aggregates spans into a structured run report
//!   (per-phase wall clock, counter totals, log₂ value histograms,
//!   final quality flags) and serializes it to JSON with no external
//!   dependencies. Reports produced by parallel `sadp-exec` tasks
//!   merge deterministically in task-index order via
//!   [`merge_reports`].

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// The phase-scoped spans of the routing flow (paper Fig. 8 plus the
/// post-routing passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// First routing pass over every net (HPWL order).
    InitialRouting,
    /// Negotiated-congestion rip-up and reroute.
    CongestionNegotiation,
    /// Via-layer TPL violation removal R&R (Algorithm 2).
    TplViolationRemoval,
    /// Final 3-colorability check with R&R fallback.
    ColoringFix,
    /// Post-routing TPL-aware double via insertion (heuristic or ILP).
    Dvi,
    /// Solution audits (full audit, mask audit).
    Audit,
}

impl Phase {
    /// Every phase, in canonical flow order.
    pub const ALL: [Phase; 6] = [
        Phase::InitialRouting,
        Phase::CongestionNegotiation,
        Phase::TplViolationRemoval,
        Phase::ColoringFix,
        Phase::Dvi,
        Phase::Audit,
    ];

    /// Stable machine-readable name (the JSON report key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::InitialRouting => "initial_routing",
            Phase::CongestionNegotiation => "congestion_negotiation",
            Phase::TplViolationRemoval => "tpl_violation_removal",
            Phase::ColoringFix => "coloring_fix",
            Phase::Dvi => "dvi",
            Phase::Audit => "audit",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-iteration counter events emitted inside a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// One R&R iteration processed (a violation popped and acted on).
    Iterations,
    /// A net successfully ripped and rerouted.
    Reroutes,
    /// A reroute that failed (old route reinstalled).
    RerouteFailures,
    /// History / penalty cost added to the routing graph (cost units).
    CostDelta,
    /// A congestion violation processed.
    CongestionHits,
    /// An FVP violation processed.
    FvpHits,
    /// A net the initial pass could not route at all.
    FailedNets,
    /// One attempt of the coloring-fix loop.
    ColoringAttempts,
    /// Vias a coloring pass left uncolorable.
    UncolorableVias,
    /// Redundant vias inserted by DVI.
    InsertedVias,
    /// Single vias left dead (unprotected) after DVI.
    DeadVias,
    /// Shorts found by an audit.
    AuditShorts,
    /// FVP windows found by an audit.
    AuditFvpWindows,
    /// A phase stopped by a budget or iteration cap before it
    /// converged (see `sadp-router`'s `Termination`).
    BudgetStops,
    /// A speculative parallel R&R wave executed (intra-instance
    /// sharding; serial fallback steps count no wave).
    Waves,
    /// A speculative wave entry spilled to the serial fixup path
    /// (window escalation needed, or speculation invalidated).
    WaveSpills,
    /// Nets an ECO delta ripped for rerouting (the victim set).
    EcoVictims,
    /// Routed nets an ECO delta kept installed untouched.
    EcoReused,
}

impl Counter {
    /// Stable machine-readable name (the JSON report key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Iterations => "iterations",
            Counter::Reroutes => "reroutes",
            Counter::RerouteFailures => "reroute_failures",
            Counter::CostDelta => "cost_delta",
            Counter::CongestionHits => "congestion_hits",
            Counter::FvpHits => "fvp_hits",
            Counter::FailedNets => "failed_nets",
            Counter::ColoringAttempts => "coloring_attempts",
            Counter::UncolorableVias => "uncolorable_vias",
            Counter::InsertedVias => "inserted_vias",
            Counter::DeadVias => "dead_vias",
            Counter::AuditShorts => "audit_shorts",
            Counter::AuditFvpWindows => "audit_fvp_windows",
            Counter::BudgetStops => "budget_stops",
            Counter::Waves => "waves",
            Counter::WaveSpills => "wave_spills",
            Counter::EcoVictims => "eco_victims",
            Counter::EcoReused => "eco_reused",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The observer interface the routing flow, the DVI solvers, and the
/// audits report into.
///
/// All methods default to empty bodies; instrumented code takes
/// `&mut impl RouteObserver`, so a [`NoopObserver`] compiles away
/// entirely. Implementations must not assume phases nest — they are
/// sequential spans, though the same phase may open more than once
/// (e.g. one [`Phase::Dvi`] span per solver call).
pub trait RouteObserver {
    /// A phase span opens.
    fn phase_start(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// The most recently opened span of `phase` closes.
    fn phase_end(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// `value` is added to `counter` within `phase`. Emitted per
    /// iteration (values are deltas, not running totals).
    fn counter(&mut self, phase: Phase, counter: Counter, value: i64) {
        let _ = (phase, counter, value);
    }

    /// A free-form key/value annotation on the run (e.g. which DVI
    /// solver actually produced the result, or the termination
    /// reason). Later notes with the same key replace earlier ones.
    fn note(&mut self, key: &str, value: &str) {
        let _ = (key, value);
    }
}

/// The zero-overhead sink: every callback is the trait's empty
/// default, monomorphized away at the call sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl RouteObserver for NoopObserver {}

/// Forwarding through a mutable reference, so callers can pass
/// `&mut observer` without giving it up.
impl<T: RouteObserver + ?Sized> RouteObserver for &mut T {
    fn phase_start(&mut self, phase: Phase) {
        (**self).phase_start(phase);
    }
    fn phase_end(&mut self, phase: Phase) {
        (**self).phase_end(phase);
    }
    fn counter(&mut self, phase: Phase, counter: Counter, value: i64) {
        (**self).counter(phase, counter, value);
    }
    fn note(&mut self, key: &str, value: &str) {
        (**self).note(key, value);
    }
}

/// One raw observer event, as recorded by [`EventLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `phase_start(phase)`.
    PhaseStart(Phase),
    /// `phase_end(phase)`.
    PhaseEnd(Phase),
    /// `counter(phase, counter, value)`.
    Counter(Phase, Counter, i64),
}

/// Records the exact event sequence — the golden-trace sink used by
/// tests and debugging, with no timing attached.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<TraceEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Every recorded event, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The phases in the order their spans opened.
    pub fn phase_sequence(&self) -> Vec<Phase> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::PhaseStart(p) => Some(*p),
                _ => None,
            })
            .collect()
    }

    /// Sum of `counter` values recorded within `phase`.
    pub fn total(&self, phase: Phase, counter: Counter) -> i64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Counter(p, c, v) if *p == phase && *c == counter => *v,
                _ => 0,
            })
            .sum()
    }

    /// `true` when every `phase_start` has a matching later
    /// `phase_end` and spans close in LIFO order.
    pub fn balanced(&self) -> bool {
        let mut stack: Vec<Phase> = Vec::new();
        for e in &self.events {
            match e {
                TraceEvent::PhaseStart(p) => stack.push(*p),
                TraceEvent::PhaseEnd(p) => {
                    if stack.pop() != Some(*p) {
                        return false;
                    }
                }
                TraceEvent::Counter(..) => {}
            }
        }
        stack.is_empty()
    }
}

impl RouteObserver for EventLog {
    fn phase_start(&mut self, phase: Phase) {
        self.events.push(TraceEvent::PhaseStart(phase));
    }
    fn phase_end(&mut self, phase: Phase) {
        self.events.push(TraceEvent::PhaseEnd(phase));
    }
    fn counter(&mut self, phase: Phase, counter: Counter, value: i64) {
        self.events.push(TraceEvent::Counter(phase, counter, value));
    }
}

/// Number of log₂ histogram buckets ([`CounterAgg::histogram`]).
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Aggregate of one counter within one phase span.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterAgg {
    /// Sum of event values.
    pub total: i64,
    /// Number of events.
    pub events: u64,
    /// Log₂ value histogram: bucket 0 counts events with value ≤ 1,
    /// bucket `i` counts values in `(2^(i-1), 2^i]`; the last bucket
    /// absorbs everything larger. Negative values land in bucket 0.
    pub histogram: [u64; HISTOGRAM_BUCKETS],
}

impl CounterAgg {
    fn record(&mut self, value: i64) {
        self.total += value;
        self.events += 1;
        let mag = value.max(0) as u64;
        let bucket = if mag <= 1 {
            0
        } else {
            (64 - (mag - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.histogram[bucket] += 1;
    }
}

/// One closed phase span of a [`JsonReport`].
#[derive(Debug, Clone)]
pub struct PhaseSpan {
    /// The phase.
    pub phase: Phase,
    /// Wall clock between `phase_start` and `phase_end`.
    pub wall: Duration,
    /// Counter aggregates recorded while the span was open.
    pub counters: BTreeMap<Counter, CounterAgg>,
}

/// The JSON-report sink: aggregates phase spans, counters, and
/// caller-set quality flags / metrics into a machine-readable run
/// report.
///
/// One `JsonReport` describes one routing/DVI run (one "arm"). Runs
/// executed in parallel on the `sadp-exec` pool merge with
/// [`merge_reports`]: because the pool returns results in task-index
/// order, the merged document is byte-identical for any thread count
/// (the PR 2 determinism guarantee) — only the wall-clock numbers
/// inside each run differ between executions.
#[derive(Debug, Clone)]
pub struct JsonReport {
    label: String,
    run_id: u64,
    spans: Vec<PhaseSpan>,
    /// Indices into `spans` of the currently open spans (LIFO).
    open: Vec<(usize, Instant)>,
    flags: BTreeMap<String, bool>,
    metrics: BTreeMap<String, i64>,
    notes: BTreeMap<String, String>,
}

/// FNV-1a over a byte string — the deterministic (seed- and
/// content-derived, never wall-clock) hash behind [`JsonReport`] run
/// ids and outcome fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl JsonReport {
    /// An empty report labeled `label` (e.g. `"ecc/+both"`). The run
    /// id defaults to a hash of the label; callers running the same
    /// labeled work more than once (e.g. concurrent service jobs)
    /// should install a distinguishing id with
    /// [`JsonReport::set_run_id`] so [`merge_reports`] output stays
    /// attributable.
    pub fn new(label: impl Into<String>) -> JsonReport {
        let label = label.into();
        JsonReport {
            run_id: fnv1a(label.as_bytes()),
            label,
            spans: Vec::new(),
            open: Vec::new(),
            flags: BTreeMap::new(),
            metrics: BTreeMap::new(),
            notes: BTreeMap::new(),
        }
    }

    /// [`JsonReport::new`] with an explicit run id.
    pub fn with_run_id(label: impl Into<String>, run_id: u64) -> JsonReport {
        let mut r = JsonReport::new(label);
        r.run_id = run_id;
        r
    }

    /// The report label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The stable run identifier (serialized as a 16-digit hex
    /// string). Deterministic: derived from the label, or whatever the
    /// caller seeded via [`JsonReport::set_run_id`] — never the clock.
    pub fn run_id(&self) -> u64 {
        self.run_id
    }

    /// Replaces the run id (see [`JsonReport::new`] on why concurrent
    /// same-label runs need distinct ids).
    pub fn set_run_id(&mut self, run_id: u64) {
        self.run_id = run_id;
    }

    /// Every closed span, in open order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// The spans of one phase (a phase may open more than once).
    pub fn spans_of(&self, phase: Phase) -> impl Iterator<Item = &PhaseSpan> {
        self.spans.iter().filter(move |s| s.phase == phase)
    }

    /// Sum of all span wall clocks. Spans are sequential, so for a
    /// single run this is ≤ the run's total wall clock.
    pub fn span_total(&self) -> Duration {
        self.spans.iter().map(|s| s.wall).sum()
    }

    /// Total of `counter` across every span of `phase`.
    pub fn total(&self, phase: Phase, counter: Counter) -> i64 {
        self.spans_of(phase)
            .filter_map(|s| s.counters.get(&counter))
            .map(|agg| agg.total)
            .sum()
    }

    /// Sets a final quality flag (e.g. `"congestion_free"`).
    pub fn set_flag(&mut self, name: impl Into<String>, value: bool) {
        self.flags.insert(name.into(), value);
    }

    /// Sets a final scalar metric (e.g. `"wirelength"`).
    pub fn set_metric(&mut self, name: impl Into<String>, value: i64) {
        self.metrics.insert(name.into(), value);
    }

    /// Reads back a flag set with [`JsonReport::set_flag`].
    pub fn flag(&self, name: &str) -> Option<bool> {
        self.flags.get(name).copied()
    }

    /// Reads back a metric set with [`JsonReport::set_metric`].
    pub fn metric(&self, name: &str) -> Option<i64> {
        self.metrics.get(name).copied()
    }

    /// Sets a free-form annotation (also reachable through
    /// [`RouteObserver::note`]).
    pub fn set_note(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.notes.insert(key.into(), value.into());
    }

    /// Reads back a note set with [`JsonReport::set_note`] /
    /// [`RouteObserver::note`].
    pub fn note_value(&self, key: &str) -> Option<&str> {
        self.notes.get(key).map(String::as_str)
    }

    /// Serializes the report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String, indent: usize) {
        let pad = " ".repeat(indent);
        let p2 = " ".repeat(indent + 2);
        let p4 = " ".repeat(indent + 4);
        out.push_str(&format!("{pad}{{\n"));
        out.push_str(&format!("{p2}\"run\": \"{}\",\n", escape(&self.label)));
        out.push_str(&format!("{p2}\"run_id\": \"{:016x}\",\n", self.run_id));
        out.push_str(&format!(
            "{p2}\"span_total_ns\": {},\n",
            self.span_total().as_nanos()
        ));
        out.push_str(&format!("{p2}\"phases\": [\n"));
        for (i, span) in self.spans.iter().enumerate() {
            out.push_str(&format!(
                "{p4}{{\"phase\": \"{}\", \"wall_ns\": {}",
                span.phase.name(),
                span.wall.as_nanos()
            ));
            if !span.counters.is_empty() {
                out.push_str(", \"counters\": {");
                let mut first = true;
                for (c, agg) in &span.counters {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let hist: Vec<String> = agg.histogram.iter().map(|b| b.to_string()).collect();
                    out.push_str(&format!(
                        "\"{}\": {{\"total\": {}, \"events\": {}, \"log2_histogram\": [{}]}}",
                        c.name(),
                        agg.total,
                        agg.events,
                        hist.join(", ")
                    ));
                }
                out.push('}');
            }
            out.push('}');
            if i + 1 < self.spans.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&format!("{p2}],\n"));
        out.push_str(&format!("{p2}\"flags\": {{"));
        let mut first = true;
        for (name, v) in &self.flags {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{}\": {}", escape(name), v));
        }
        out.push_str("},\n");
        out.push_str(&format!("{p2}\"metrics\": {{"));
        let mut first = true;
        for (name, v) in &self.metrics {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{}\": {}", escape(name), v));
        }
        out.push_str("},\n");
        out.push_str(&format!("{p2}\"notes\": {{"));
        let mut first = true;
        for (name, v) in &self.notes {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{}\": \"{}\"", escape(name), escape(v)));
        }
        out.push_str("}\n");
        out.push_str(&format!("{pad}}}"));
    }
}

impl RouteObserver for JsonReport {
    fn phase_start(&mut self, phase: Phase) {
        self.spans.push(PhaseSpan {
            phase,
            wall: Duration::ZERO,
            counters: BTreeMap::new(),
        });
        self.open.push((self.spans.len() - 1, Instant::now()));
    }

    fn phase_end(&mut self, phase: Phase) {
        // Close the innermost open span of this phase (LIFO); an
        // unmatched end is ignored.
        if let Some(pos) = self
            .open
            .iter()
            .rposition(|&(i, _)| self.spans[i].phase == phase)
        {
            let (i, t0) = self.open.remove(pos);
            self.spans[i].wall = t0.elapsed();
        }
    }

    fn note(&mut self, key: &str, value: &str) {
        self.set_note(key, value);
    }

    fn counter(&mut self, phase: Phase, counter: Counter, value: i64) {
        // Attribute to the innermost open span of the phase, or to a
        // fresh zero-duration span when the phase is not open (a
        // counter emitted outside a span still must not be lost).
        let idx = self
            .open
            .iter()
            .rev()
            .map(|&(i, _)| i)
            .find(|&i| self.spans[i].phase == phase);
        let i = match idx {
            Some(i) => i,
            None => {
                self.spans.push(PhaseSpan {
                    phase,
                    wall: Duration::ZERO,
                    counters: BTreeMap::new(),
                });
                self.spans.len() - 1
            }
        };
        self.spans[i]
            .counters
            .entry(counter)
            .or_default()
            .record(value);
    }
}

/// Merges per-task reports into one JSON document.
///
/// The caller passes reports in task-index order (what
/// `sadp_exec::map` returns); the document preserves that order, so
/// the merged structure is identical for any `SADP_EXEC_THREADS`.
pub fn merge_reports(title: &str, reports: &[JsonReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"report\": \"{}\",\n", escape(title)));
    out.push_str(&format!("  \"runs\": {},\n", reports.len()));
    out.push_str("  \"results\": [\n");
    for (i, r) in reports.iter().enumerate() {
        r.write_json(&mut out, 4);
        if i + 1 < reports.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(obs: &mut impl RouteObserver) {
        obs.phase_start(Phase::InitialRouting);
        obs.counter(Phase::InitialRouting, Counter::FailedNets, 0);
        obs.phase_end(Phase::InitialRouting);
        obs.phase_start(Phase::CongestionNegotiation);
        for v in [1, 1, 3] {
            obs.counter(Phase::CongestionNegotiation, Counter::Reroutes, v);
        }
        obs.counter(Phase::CongestionNegotiation, Counter::RerouteFailures, 1);
        obs.phase_end(Phase::CongestionNegotiation);
    }

    #[test]
    fn noop_observer_accepts_everything() {
        drive(&mut NoopObserver);
    }

    #[test]
    fn event_log_records_sequence_and_totals() {
        let mut log = EventLog::new();
        drive(&mut log);
        assert_eq!(
            log.phase_sequence(),
            vec![Phase::InitialRouting, Phase::CongestionNegotiation]
        );
        assert!(log.balanced());
        assert_eq!(
            log.total(Phase::CongestionNegotiation, Counter::Reroutes),
            5
        );
        assert_eq!(
            log.total(Phase::CongestionNegotiation, Counter::RerouteFailures),
            1
        );
        assert_eq!(log.total(Phase::InitialRouting, Counter::Reroutes), 0);
    }

    #[test]
    fn unbalanced_log_detected() {
        let mut log = EventLog::new();
        log.phase_start(Phase::Dvi);
        assert!(!log.balanced());
        log.phase_end(Phase::Audit);
        assert!(!log.balanced());
    }

    #[test]
    fn json_report_aggregates_spans() {
        let mut rep = JsonReport::new("ecc/+both");
        drive(&mut rep);
        rep.set_flag("congestion_free", true);
        rep.set_metric("wirelength", 1234);
        assert_eq!(rep.spans().len(), 2);
        assert_eq!(
            rep.total(Phase::CongestionNegotiation, Counter::Reroutes),
            5
        );
        let agg = &rep.spans()[1].counters[&Counter::Reroutes];
        assert_eq!(agg.events, 3);
        // Values 1, 1 land in bucket 0; value 3 in bucket 2 ((2,4]).
        assert_eq!(agg.histogram[0], 2);
        assert_eq!(agg.histogram[2], 1);
        assert_eq!(rep.flag("congestion_free"), Some(true));
        assert_eq!(rep.metric("wirelength"), Some(1234));
        let json = rep.to_json();
        assert!(json.contains("\"run\": \"ecc/+both\""));
        assert!(json.contains("\"phase\": \"congestion_negotiation\""));
        assert!(json.contains("\"congestion_free\": true"));
        assert!(json.contains("\"wirelength\": 1234"));
    }

    #[test]
    fn notes_round_trip_and_serialize() {
        let mut rep = JsonReport::new("x");
        // Through the observer interface…
        RouteObserver::note(&mut rep, "dvi_solver", "ilp");
        // …and replaced by a later note with the same key.
        rep.set_note("dvi_solver", "heuristic");
        rep.set_note("termination", "deadline");
        assert_eq!(rep.note_value("dvi_solver"), Some("heuristic"));
        assert_eq!(rep.note_value("missing"), None);
        let json = rep.to_json();
        assert!(json
            .contains("\"notes\": {\"dvi_solver\": \"heuristic\", \"termination\": \"deadline\"}"));
        // Sinks without note support ignore them silently.
        RouteObserver::note(&mut NoopObserver, "k", "v");
        RouteObserver::note(&mut EventLog::new(), "k", "v");
    }

    #[test]
    fn counter_outside_open_span_is_kept() {
        let mut rep = JsonReport::new("x");
        rep.counter(Phase::Dvi, Counter::DeadVias, 7);
        assert_eq!(rep.total(Phase::Dvi, Counter::DeadVias), 7);
        assert_eq!(rep.spans().len(), 1);
        assert_eq!(rep.spans()[0].wall, Duration::ZERO);
    }

    #[test]
    fn repeated_phases_get_separate_spans() {
        let mut rep = JsonReport::new("x");
        for _ in 0..2 {
            rep.phase_start(Phase::Dvi);
            rep.counter(Phase::Dvi, Counter::InsertedVias, 4);
            rep.phase_end(Phase::Dvi);
        }
        assert_eq!(rep.spans_of(Phase::Dvi).count(), 2);
        assert_eq!(rep.total(Phase::Dvi, Counter::InsertedVias), 8);
    }

    #[test]
    fn span_total_sums_walls() {
        let mut rep = JsonReport::new("x");
        rep.phase_start(Phase::InitialRouting);
        std::thread::sleep(Duration::from_millis(2));
        rep.phase_end(Phase::InitialRouting);
        assert!(rep.span_total() >= Duration::from_millis(1));
    }

    #[test]
    fn merge_preserves_order_and_escapes() {
        let a = JsonReport::new("a\"1");
        let b = JsonReport::new("b");
        let doc = merge_reports("four-arms", &[a, b]);
        assert!(doc.contains("\"report\": \"four-arms\""));
        assert!(doc.contains("\"runs\": 2"));
        let ia = doc.find("a\\\"1").expect("escaped label a");
        let ib = doc.find("\"run\": \"b\"").expect("label b");
        assert!(ia < ib, "task order preserved");
    }

    #[test]
    fn run_ids_are_deterministic_and_serialized() {
        let a = JsonReport::new("ecc/+both");
        let b = JsonReport::new("ecc/+both");
        assert_eq!(a.run_id(), b.run_id(), "same label, same default id");
        assert_ne!(a.run_id(), JsonReport::new("efc/+both").run_id());
        let mut c = JsonReport::with_run_id("ecc/+both", 0xdead_beef);
        assert_eq!(c.run_id(), 0xdead_beef);
        c.set_run_id(7);
        assert_eq!(c.run_id(), 7);
        assert!(c.to_json().contains("\"run_id\": \"0000000000000007\""));
        // Two same-label jobs distinguished by seeded ids stay
        // attributable in a merged document.
        let doc = merge_reports(
            "svc",
            &[
                JsonReport::with_run_id("job", 1),
                JsonReport::with_run_id("job", 2),
            ],
        );
        let i1 = doc.find("0000000000000001").expect("id 1 present");
        let i2 = doc.find("0000000000000002").expect("id 2 present");
        assert!(i1 < i2, "task order preserved");
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn histogram_buckets_cover_large_values() {
        let mut agg = CounterAgg::default();
        agg.record(-5);
        agg.record(1);
        agg.record(2);
        agg.record(1 << 40);
        assert_eq!(agg.events, 4);
        assert_eq!(agg.histogram[0], 2); // -5 and 1
        assert_eq!(agg.histogram[1], 1); // 2
        assert_eq!(agg.histogram[HISTOGRAM_BUCKETS - 1], 1); // huge
    }
}
