//! # bilp
//!
//! A self-contained 0-1 (binary) integer linear programming library:
//! a model builder plus an exact branch-and-bound solver with
//! constraint propagation, connected-component presolve, warm starts,
//! and a wall-clock time limit with optimality-gap reporting.
//!
//! This crate is the suite's substitute for the commercial ILP solver
//! (Gurobi 6.5) used by the paper for the TPL-aware double-via
//! insertion reference solutions; see `DESIGN.md` §2.2.
//!
//! ```
//! use bilp::{Model, Sense, SolveOptions};
//!
//! // maximize x + y  s.t.  x + y <= 1   (a tiny packing problem)
//! let mut m = Model::maximize();
//! let x = m.add_var();
//! let y = m.add_var();
//! m.set_objective_coeff(x, 1);
//! m.set_objective_coeff(y, 1);
//! m.add_constraint([(x, 1), (y, 1)], Sense::Le, 1);
//! let sol = m.solve(&SolveOptions::default());
//! assert_eq!(sol.objective, 1);
//! assert!(sol.is_optimal());
//! ```

#![warn(missing_docs)]

pub mod model;
pub mod solve;

pub use model::{Model, Sense, VarId};
pub use solve::{Solution, SolveOptions, SolveStatus};
