//! The branch-and-bound solver.
//!
//! The engine normalizes every constraint to `≤` rows, splits the
//! model into connected components over shared variables, and runs a
//! trail-based depth-first branch and bound per component with:
//!
//! * **constraint propagation** — running minimum-activity per row,
//!   with unit implications (a variable whose assignment would
//!   necessarily violate a row is fixed to the other value);
//! * **objective bounding** — fixed objective plus the positive slack
//!   of unassigned variables prunes dominated subtrees;
//! * **warm starts** — an initial incumbent (e.g. from a heuristic)
//!   tightens pruning from the first node;
//! * **a wall-clock time limit** — on expiry the best incumbent is
//!   returned together with a proven upper bound so callers can report
//!   the optimality gap.

use std::time::{Duration, Instant};

use crate::model::{Direction, Model, Sense};

/// Solver options.
#[derive(Debug, Clone, Default)]
pub struct SolveOptions {
    /// Abort the search after this much wall-clock time (per model;
    /// shared across components). `None` = run to optimality.
    pub time_limit: Option<Duration>,
    /// An initial feasible assignment used as the starting incumbent.
    /// Ignored if infeasible for the model.
    pub warm_start: Option<Vec<bool>>,
}

/// Outcome classification of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// The returned assignment is proven optimal.
    Optimal,
    /// A feasible assignment was found but optimality was not proven
    /// (time limit).
    Feasible,
    /// The model has no feasible assignment.
    Infeasible,
    /// The time limit expired before any feasible assignment was
    /// found (the model may or may not be feasible).
    Unknown,
}

/// Result of [`Model::solve`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Assignment per variable (meaningful unless status is
    /// `Infeasible`/`Unknown`).
    pub values: Vec<bool>,
    /// Objective of `values`, in the model's own direction.
    pub objective: i64,
    /// Proven bound on the optimum (≥ objective for maximization,
    /// ≤ for minimization). Equal to `objective` when optimal.
    pub best_bound: i64,
    /// Outcome classification.
    pub status: SolveStatus,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
}

impl Solution {
    /// `true` when the solution is proven optimal.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }

    /// Absolute optimality gap (`best_bound - objective` for
    /// maximization).
    pub fn gap(&self) -> i64 {
        (self.best_bound - self.objective).abs()
    }
}

impl Model {
    /// Solves the model by branch and bound.
    ///
    /// See [`SolveOptions`] for limits and warm starts. The solver is
    /// deterministic for a given model and options.
    pub fn solve(&self, options: &SolveOptions) -> Solution {
        let deadline = options.time_limit.map(|d| Instant::now() + d);
        // Normalize to maximization over <= rows.
        let negate = self.direction() == Direction::Minimize;
        let obj: Vec<i64> = self
            .objective()
            .iter()
            .map(|&c| if negate { -c } else { c })
            .collect();
        let mut rows: Vec<(Vec<(u32, i64)>, i64)> = Vec::new();
        for c in self.constraints() {
            let terms: Vec<(u32, i64)> = c.terms.iter().map(|&(v, k)| (v.0, k)).collect();
            match c.sense {
                Sense::Le => rows.push((terms, c.rhs)),
                Sense::Ge => rows.push((negate_terms(&terms), -c.rhs)),
                Sense::Eq => {
                    rows.push((terms.clone(), c.rhs));
                    rows.push((negate_terms(&terms), -c.rhs));
                }
            }
        }

        let n = self.var_count();
        // Component decomposition (union-find over rows).
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut i: u32) -> u32 {
            while parent[i as usize] != i {
                parent[i as usize] = parent[parent[i as usize] as usize];
                i = parent[i as usize];
            }
            i
        }
        for (terms, _) in &rows {
            if let Some(&(first, _)) = terms.first() {
                let r0 = find(&mut parent, first);
                for &(v, _) in &terms[1..] {
                    let rv = find(&mut parent, v);
                    parent[rv as usize] = r0;
                }
            }
        }
        let mut comp_vars: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for v in 0..n as u32 {
            comp_vars.entry(find(&mut parent, v)).or_default().push(v);
        }
        let mut comp_rows: std::collections::HashMap<u32, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, (terms, _)) in rows.iter().enumerate() {
            if let Some(&(v, _)) = terms.first() {
                comp_rows.entry(find(&mut parent, v)).or_default().push(i);
            } else {
                // Empty row: trivially feasible iff 0 <= rhs.
                if rows[i].1 < 0 {
                    return infeasible(self, n);
                }
            }
        }

        let mut values = vec![false; n];
        let mut total_obj: i64 = 0;
        let mut total_bound: i64 = 0;
        let mut all_optimal = true;
        let mut any_unknown = false;
        let mut nodes_total = 0u64;

        // Deterministic component order.
        let mut roots: Vec<u32> = comp_vars.keys().copied().collect();
        roots.sort_unstable();
        for root in roots {
            let vars = &comp_vars[&root];
            let row_ids = comp_rows.get(&root).map(|v| v.as_slice()).unwrap_or(&[]);
            if row_ids.is_empty() {
                // Unconstrained variables: set by objective sign.
                for &v in vars {
                    let c = obj[v as usize];
                    values[v as usize] = c > 0;
                    let gain = if c > 0 { c } else { 0 };
                    total_obj += gain;
                    total_bound += gain;
                }
                continue;
            }
            let mut search = ComponentSearch::new(vars, row_ids, &rows, &obj);
            if let Some(ws) = &options.warm_start {
                search.try_incumbent_from(ws);
            }
            let outcome = search.run(deadline, &mut nodes_total);
            match outcome {
                ComponentOutcome::Infeasible => return infeasible(self, n),
                ComponentOutcome::Solved { proven } => {
                    let (best, bound) = (search.best_obj, search.best_bound);
                    for (local, &v) in vars.iter().enumerate() {
                        values[v as usize] = search.best_values[local];
                    }
                    total_obj += best;
                    total_bound += if proven { best } else { bound };
                    if !proven {
                        all_optimal = false;
                    }
                }
                ComponentOutcome::NoIncumbent => {
                    any_unknown = true;
                    all_optimal = false;
                    total_bound += search.best_bound;
                }
            }
        }

        let status = if any_unknown {
            SolveStatus::Unknown
        } else if all_optimal {
            SolveStatus::Optimal
        } else {
            SolveStatus::Feasible
        };
        let (objective, best_bound) = if negate {
            (-total_obj, -total_bound)
        } else {
            (total_obj, total_bound)
        };
        debug_assert!(
            status != SolveStatus::Optimal || self.is_feasible(&values),
            "optimal solution must be feasible"
        );
        Solution {
            values,
            objective,
            best_bound,
            status,
            nodes: nodes_total,
        }
    }
}

fn infeasible(model: &Model, n: usize) -> Solution {
    let _ = model;
    Solution {
        values: vec![false; n],
        objective: 0,
        best_bound: 0,
        status: SolveStatus::Infeasible,
        nodes: 0,
    }
}

fn negate_terms(terms: &[(u32, i64)]) -> Vec<(u32, i64)> {
    terms.iter().map(|&(v, c)| (v, -c)).collect()
}

enum ComponentOutcome {
    Solved { proven: bool },
    Infeasible,
    NoIncumbent,
}

/// DFS branch and bound over one connected component.
struct ComponentSearch {
    /// Global ids of the component's variables (local index order).
    globals: Vec<u32>,
    /// Local rows: (terms with local var ids, rhs).
    rows: Vec<(Vec<(u32, i64)>, i64)>,
    /// Per-row running minimum activity.
    min_act: Vec<i64>,
    /// Per local var: rows it appears in, with coefficients.
    var_rows: Vec<Vec<(u32, i64)>>,
    obj: Vec<i64>,
    /// -1 unassigned, 0 / 1 assigned.
    values: Vec<i8>,
    trail: Vec<u32>,
    decisions: Vec<Decision>,
    fixed_obj: i64,
    ub_slack: i64,
    /// Group index per local var (-1 = ungrouped). Groups come from
    /// at-most-one packing rows and tighten the objective bound.
    group_of: Vec<i32>,
    groups: Vec<Vec<u32>>,
    group_cache: Vec<i64>,
    best_obj: i64,
    best_values: Vec<bool>,
    has_incumbent: bool,
    /// Upper bound proven at the root (used for gap on timeout).
    best_bound: i64,
    /// Branch order: locals sorted by decreasing |objective|, then
    /// constraint participation.
    branch_order: Vec<u32>,
}

struct Decision {
    var: u32,
    second: i8,
    trail_mark: usize,
    tried_second: bool,
}

impl ComponentSearch {
    fn new(
        vars: &[u32],
        row_ids: &[usize],
        all_rows: &[(Vec<(u32, i64)>, i64)],
        global_obj: &[i64],
    ) -> ComponentSearch {
        let mut local_of = std::collections::HashMap::new();
        for (i, &g) in vars.iter().enumerate() {
            local_of.insert(g, i as u32);
        }
        let mut rows = Vec::with_capacity(row_ids.len());
        for &r in row_ids {
            let (terms, rhs) = &all_rows[r];
            let local_terms: Vec<(u32, i64)> =
                terms.iter().map(|&(v, c)| (local_of[&v], c)).collect();
            rows.push((local_terms, *rhs));
        }
        let n = vars.len();
        let mut var_rows = vec![Vec::new(); n];
        let mut min_act = vec![0i64; rows.len()];
        for (ri, (terms, _)) in rows.iter().enumerate() {
            for &(v, c) in terms {
                var_rows[v as usize].push((ri as u32, c));
                if c < 0 {
                    min_act[ri] += c;
                }
            }
        }
        let obj: Vec<i64> = vars.iter().map(|&g| global_obj[g as usize]).collect();
        // Group variables by at-most-one packing rows (rhs = 1, all
        // coefficients 1): within such a group at most one variable
        // can be 1, so the group's bound contribution is the max
        // positive objective, not the sum.
        let mut group_of = vec![-1i32; n];
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut row_order: Vec<usize> = (0..rows.len()).collect();
        row_order.sort_by_key(|&r| std::cmp::Reverse(rows[r].0.len()));
        for r in row_order {
            let (terms, rhs) = &rows[r];
            if *rhs != 1 || terms.iter().any(|&(_, c)| c != 1) {
                continue;
            }
            let members: Vec<u32> = terms
                .iter()
                .map(|&(v, _)| v)
                .filter(|&v| group_of[v as usize] < 0)
                .collect();
            if members.len() >= 2 {
                for &v in &members {
                    group_of[v as usize] = groups.len() as i32;
                }
                groups.push(members);
            }
        }
        let group_cache: Vec<i64> = groups
            .iter()
            .map(|g| g.iter().map(|&v| obj[v as usize].max(0)).max().unwrap_or(0))
            .collect();
        let mut ub_slack: i64 = group_cache.iter().sum();
        for v in 0..n {
            if group_of[v] < 0 {
                ub_slack += obj[v].max(0);
            }
        }
        let mut branch_order: Vec<u32> = (0..n as u32).collect();
        branch_order.sort_by_key(|&v| {
            (
                std::cmp::Reverse(obj[v as usize].abs()),
                std::cmp::Reverse(var_rows[v as usize].len()),
                v,
            )
        });
        ComponentSearch {
            globals: vars.to_vec(),
            rows,
            min_act,
            var_rows,
            obj,
            values: vec![-1; n],
            trail: Vec::new(),
            decisions: Vec::new(),
            fixed_obj: 0,
            ub_slack,
            group_of,
            groups,
            group_cache,
            best_obj: i64::MIN,
            best_values: vec![false; n],
            has_incumbent: false,
            best_bound: ub_slack,
            branch_order,
        }
    }

    /// Installs a warm-start incumbent if it satisfies the component.
    fn try_incumbent_from(&mut self, global_values: &[bool]) {
        let vals: Vec<bool> = self
            .globals
            .iter()
            .map(|&g| global_values.get(g as usize).copied().unwrap_or(false))
            .collect();
        for (terms, rhs) in &self.rows {
            let lhs: i64 = terms
                .iter()
                .map(|&(v, c)| if vals[v as usize] { c } else { 0 })
                .sum();
            if lhs > *rhs {
                return;
            }
        }
        let o: i64 = self
            .obj
            .iter()
            .zip(&vals)
            .map(|(&c, &v)| if v { c } else { 0 })
            .sum();
        if o > self.best_obj {
            self.best_obj = o;
            self.best_values = vals;
            self.has_incumbent = true;
        }
    }

    /// Bound contribution of group `g` under the current assignment.
    fn compute_group(&self, g: usize) -> i64 {
        let mut best = 0i64;
        for &v in &self.groups[g] {
            match self.values[v as usize] {
                1 => return 0, // the group's one slot is spent
                -1 => best = best.max(self.obj[v as usize].max(0)),
                _ => {}
            }
        }
        best
    }

    fn update_slack_for(&mut self, var: u32) {
        let g = self.group_of[var as usize];
        if g >= 0 {
            let old = self.group_cache[g as usize];
            let new = self.compute_group(g as usize);
            self.group_cache[g as usize] = new;
            self.ub_slack += new - old;
        } else if self.values[var as usize] == -1 {
            self.ub_slack += self.obj[var as usize].max(0);
        } else {
            self.ub_slack -= self.obj[var as usize].max(0);
        }
    }

    /// Assigns `var := val`, updating activities; returns the rows
    /// whose min-activity changed.
    fn assign(&mut self, var: u32, val: i8, touched: &mut Vec<u32>) {
        debug_assert_eq!(self.values[var as usize], -1);
        self.values[var as usize] = val;
        self.trail.push(var);
        let c_obj = self.obj[var as usize];
        self.update_slack_for(var);
        if val == 1 {
            self.fixed_obj += c_obj;
        }
        for i in 0..self.var_rows[var as usize].len() {
            let (r, c) = self.var_rows[var as usize][i];
            let delta = if c > 0 && val == 1 {
                c
            } else if c < 0 && val == 0 {
                -c
            } else {
                0
            };
            if delta != 0 {
                self.min_act[r as usize] += delta;
                touched.push(r);
            }
        }
    }

    /// Undoes trail entries down to `mark`.
    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let var = self.trail.pop().expect("trail not empty");
            let val = self.values[var as usize];
            self.values[var as usize] = -1;
            let c_obj = self.obj[var as usize];
            self.update_slack_for(var);
            if val == 1 {
                self.fixed_obj -= c_obj;
            }
            for i in 0..self.var_rows[var as usize].len() {
                let (r, c) = self.var_rows[var as usize][i];
                let delta = if c > 0 && val == 1 {
                    c
                } else if c < 0 && val == 0 {
                    -c
                } else {
                    0
                };
                self.min_act[r as usize] -= delta;
            }
        }
    }

    /// Propagates implications from the touched rows. Returns `false`
    /// on conflict.
    fn propagate(&mut self, mut queue: Vec<u32>) -> bool {
        while let Some(r) = queue.pop() {
            let (ref terms, rhs) = self.rows[r as usize];
            let act = self.min_act[r as usize];
            if act > rhs {
                return false;
            }
            // Find forced assignments.
            let mut forced: Vec<(u32, i8)> = Vec::new();
            for &(v, c) in terms {
                if self.values[v as usize] != -1 {
                    continue;
                }
                if c > 0 && act + c > rhs {
                    forced.push((v, 0));
                } else if c < 0 && act - c > rhs {
                    forced.push((v, 1));
                }
            }
            for (v, val) in forced {
                if self.values[v as usize] != -1 {
                    if self.values[v as usize] != val {
                        return false;
                    }
                    continue;
                }
                self.assign(v, val, &mut queue);
            }
        }
        true
    }

    fn assign_and_propagate(&mut self, var: u32, val: i8) -> bool {
        let mut touched = Vec::new();
        self.assign(var, val, &mut touched);
        self.propagate(touched)
    }

    fn pick_branch_var(&self) -> Option<u32> {
        self.branch_order
            .iter()
            .copied()
            .find(|&v| self.values[v as usize] == -1)
    }

    /// Backtracks to the most recent decision with an untried value;
    /// returns `false` when the search space is exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some(mut d) = self.decisions.pop() {
            self.undo_to(d.trail_mark);
            if !d.tried_second {
                d.tried_second = true;
                let (var, val) = (d.var, d.second);
                self.decisions.push(d);
                if self.assign_and_propagate(var, val) {
                    return true;
                }
                // Second value conflicts too: keep unwinding.
                continue;
            }
        }
        false
    }

    fn record_incumbent(&mut self) {
        if self.fixed_obj > self.best_obj {
            self.best_obj = self.fixed_obj;
            self.has_incumbent = true;
            for (i, &v) in self.values.iter().enumerate() {
                self.best_values[i] = v == 1;
            }
        }
    }

    fn run(&mut self, deadline: Option<Instant>, nodes_total: &mut u64) -> ComponentOutcome {
        // Root propagation.
        let all_rows: Vec<u32> = (0..self.rows.len() as u32).collect();
        if !self.propagate(all_rows) {
            return ComponentOutcome::Infeasible;
        }
        self.best_bound = self.fixed_obj + self.ub_slack;
        let mut nodes = 0u64;
        let mut timed_out = false;
        loop {
            nodes += 1;
            if nodes.is_multiple_of(4096) {
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        timed_out = true;
                        break;
                    }
                }
            }
            // Bound: can this subtree beat the incumbent?
            if self.has_incumbent && self.fixed_obj + self.ub_slack <= self.best_obj {
                if !self.backtrack() {
                    break;
                }
                continue;
            }
            match self.pick_branch_var() {
                None => {
                    self.record_incumbent();
                    if !self.backtrack() {
                        break;
                    }
                }
                Some(v) => {
                    let first: i8 = if self.obj[v as usize] >= 0 { 1 } else { 0 };
                    self.decisions.push(Decision {
                        var: v,
                        second: 1 - first,
                        trail_mark: self.trail.len(),
                        tried_second: false,
                    });
                    if !self.assign_and_propagate(v, first) && !self.backtrack() {
                        break;
                    }
                }
            }
        }
        *nodes_total += nodes;
        if !self.has_incumbent {
            if timed_out {
                ComponentOutcome::NoIncumbent
            } else {
                ComponentOutcome::Infeasible
            }
        } else {
            ComponentOutcome::Solved { proven: !timed_out }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarId};

    fn knapsack(weights: &[i64], profits: &[i64], cap: i64) -> Model {
        let mut m = Model::maximize();
        let vars = m.add_vars(weights.len());
        for (i, &v) in vars.iter().enumerate() {
            m.set_objective_coeff(v, profits[i]);
        }
        m.add_constraint(
            vars.iter().copied().zip(weights.iter().copied()),
            Sense::Le,
            cap,
        );
        m
    }

    /// Exhaustive optimum for cross-checking.
    fn brute_force(m: &Model) -> Option<i64> {
        let n = m.var_count();
        assert!(n <= 20);
        let mut best = None;
        for mask in 0u32..(1 << n) {
            let values: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            if m.is_feasible(&values) {
                let o = m.objective_value(&values);
                best = Some(best.map_or(o, |b: i64| b.max(o)));
            }
        }
        best
    }

    #[test]
    fn solves_knapsack() {
        let m = knapsack(&[3, 4, 5, 9], &[4, 5, 6, 11], 11);
        let sol = m.solve(&SolveOptions::default());
        assert!(sol.is_optimal());
        assert_eq!(sol.objective, 11); // items 1 and 2 (weight 9, profit 11)
        assert!(m.is_feasible(&sol.values));
        assert_eq!(sol.objective, m.objective_value(&sol.values));
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::maximize();
        let x = m.add_var();
        m.add_constraint([(x, 1)], Sense::Ge, 1);
        m.add_constraint([(x, 1)], Sense::Le, 0);
        let sol = m.solve(&SolveOptions::default());
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn equality_constraints() {
        // Exactly one of three, maximize weighted choice.
        let mut m = Model::maximize();
        let v = m.add_vars(3);
        for (i, &x) in v.iter().enumerate() {
            m.set_objective_coeff(x, (i as i64) + 1);
        }
        m.add_constraint(v.iter().map(|&x| (x, 1)), Sense::Eq, 1);
        let sol = m.solve(&SolveOptions::default());
        assert!(sol.is_optimal());
        assert_eq!(sol.objective, 3);
        assert_eq!(sol.values, vec![false, false, true]);
    }

    #[test]
    fn minimization_works() {
        // Cover constraint: x + y >= 1, minimize 2x + 3y -> x.
        let mut m = Model::minimize();
        let x = m.add_var();
        let y = m.add_var();
        m.set_objective_coeff(x, 2);
        m.set_objective_coeff(y, 3);
        m.add_constraint([(x, 1), (y, 1)], Sense::Ge, 1);
        let sol = m.solve(&SolveOptions::default());
        assert!(sol.is_optimal());
        assert_eq!(sol.objective, 2);
        assert_eq!(sol.values, vec![true, false]);
    }

    #[test]
    fn unconstrained_vars_follow_objective() {
        let mut m = Model::maximize();
        let x = m.add_var();
        let y = m.add_var();
        m.set_objective_coeff(x, 5);
        m.set_objective_coeff(y, -5);
        let sol = m.solve(&SolveOptions::default());
        assert!(sol.is_optimal());
        assert_eq!(sol.objective, 5);
        assert_eq!(sol.values, vec![true, false]);
    }

    #[test]
    fn components_solve_independently() {
        // Two disjoint packing problems.
        let mut m = Model::maximize();
        let a = m.add_vars(2);
        let b = m.add_vars(2);
        for &v in a.iter().chain(&b) {
            m.set_objective_coeff(v, 1);
        }
        m.add_constraint([(a[0], 1), (a[1], 1)], Sense::Le, 1);
        m.add_constraint([(b[0], 1), (b[1], 1)], Sense::Le, 1);
        let sol = m.solve(&SolveOptions::default());
        assert!(sol.is_optimal());
        assert_eq!(sol.objective, 2);
    }

    #[test]
    fn warm_start_is_used() {
        let m = knapsack(&[1; 10], &[1; 10], 5);
        let ws = vec![
            true, true, true, true, true, false, false, false, false, false,
        ];
        let sol = m.solve(&SolveOptions {
            warm_start: Some(ws),
            ..SolveOptions::default()
        });
        assert!(sol.is_optimal());
        assert_eq!(sol.objective, 5);
    }

    #[test]
    fn infeasible_warm_start_is_ignored() {
        let m = knapsack(&[2, 2], &[1, 1], 2);
        let sol = m.solve(&SolveOptions {
            warm_start: Some(vec![true, true]),
            ..SolveOptions::default()
        });
        assert!(sol.is_optimal());
        assert_eq!(sol.objective, 1);
    }

    #[test]
    fn matches_brute_force_on_random_models() {
        // Deterministic pseudo-random models, cross-checked
        // exhaustively.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..40 {
            let n = 4 + (rng() % 8) as usize; // 4..12 vars
            let mut m = Model::maximize();
            let vars = m.add_vars(n);
            for &v in &vars {
                m.set_objective_coeff(v, (rng() % 21) as i64 - 10);
            }
            let rows = 2 + (rng() % 6) as usize;
            for _ in 0..rows {
                let mut terms = Vec::new();
                for &v in &vars {
                    if rng() % 3 == 0 {
                        terms.push((v, (rng() % 9) as i64 - 4));
                    }
                }
                let sense = match rng() % 3 {
                    0 => Sense::Le,
                    1 => Sense::Ge,
                    _ => Sense::Eq,
                };
                let rhs = (rng() % 7) as i64 - 2;
                m.add_constraint(terms, sense, rhs);
            }
            let sol = m.solve(&SolveOptions::default());
            match brute_force(&m) {
                Some(best) => {
                    assert!(sol.is_optimal(), "trial {trial}: expected optimal");
                    assert!(
                        m.is_feasible(&sol.values),
                        "trial {trial}: infeasible answer"
                    );
                    assert_eq!(sol.objective, best, "trial {trial}: wrong optimum");
                    assert_eq!(sol.objective, m.objective_value(&sol.values));
                }
                None => {
                    assert_eq!(
                        sol.status,
                        SolveStatus::Infeasible,
                        "trial {trial}: expected infeasible"
                    );
                }
            }
        }
    }

    #[test]
    fn time_limit_reports_gap() {
        // A large independent-set-ish model the solver cannot finish
        // in zero time: with a zero time limit we must still get a
        // valid status and a bound >= objective.
        let mut m = Model::maximize();
        let n = 60;
        let vars = m.add_vars(n);
        for &v in &vars {
            m.set_objective_coeff(v, 1);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if (i + j) % 3 == 0 {
                    m.add_constraint([(vars[i], 1), (vars[j], 1)], Sense::Le, 1);
                }
            }
        }
        let sol = m.solve(&SolveOptions {
            time_limit: Some(Duration::from_millis(0)),
            ..SolveOptions::default()
        });
        match sol.status {
            SolveStatus::Optimal | SolveStatus::Feasible => {
                assert!(m.is_feasible(&sol.values));
                assert!(sol.best_bound >= sol.objective);
            }
            SolveStatus::Unknown => {}
            SolveStatus::Infeasible => panic!("model is feasible"),
        }
    }

    #[test]
    fn empty_model_is_optimal() {
        let m = Model::maximize();
        let sol = m.solve(&SolveOptions::default());
        assert!(sol.is_optimal());
        assert_eq!(sol.objective, 0);
        assert!(sol.values.is_empty());
    }

    #[test]
    fn big_m_constraints() {
        // y >= x via big-M style: x - y <= 0; maximize x - costs.
        let mut m = Model::maximize();
        let x = m.add_var();
        let y = m.add_var();
        m.set_objective_coeff(x, 10);
        m.set_objective_coeff(y, -3);
        m.add_constraint([(x, 1), (y, -1)], Sense::Le, 0);
        let sol = m.solve(&SolveOptions::default());
        assert!(sol.is_optimal());
        assert_eq!(sol.objective, 7);
        assert_eq!(sol.values, vec![true, true]);
    }

    #[test]
    fn var_id_display() {
        assert_eq!(VarId(3).to_string(), "x3");
    }
}
