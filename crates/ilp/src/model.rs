//! The 0-1 ILP model builder.

use std::fmt;

/// Identifier of a binary decision variable (its index in the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Comparison sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs = rhs`
    Eq,
}

/// A linear constraint over binary variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// `(variable, coefficient)` terms; one entry per variable.
    pub terms: Vec<(VarId, i64)>,
    /// Comparison sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: i64,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// A 0-1 integer linear program.
///
/// Build with [`Model::maximize`] / [`Model::minimize`], add variables
/// and constraints, then call [`Model::solve`].
#[derive(Debug, Clone)]
pub struct Model {
    direction: Direction,
    objective: Vec<i64>,
    constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty maximization model.
    pub fn maximize() -> Model {
        Model {
            direction: Direction::Maximize,
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Creates an empty minimization model.
    pub fn minimize() -> Model {
        Model {
            direction: Direction::Minimize,
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The optimization direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Adds a binary variable with objective coefficient 0.
    pub fn add_var(&mut self) -> VarId {
        self.objective.push(0);
        VarId(self.objective.len() as u32 - 1)
    }

    /// Adds `n` binary variables, returning their ids.
    pub fn add_vars(&mut self, n: usize) -> Vec<VarId> {
        (0..n).map(|_| self.add_var()).collect()
    }

    /// Sets the objective coefficient of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn set_objective_coeff(&mut self, var: VarId, coeff: i64) {
        self.objective[var.index()] = coeff;
    }

    /// The objective coefficient of `var`.
    pub fn objective_coeff(&self, var: VarId) -> i64 {
        self.objective[var.index()]
    }

    /// Adds a linear constraint. Terms with duplicate variables are
    /// combined; zero-coefficient terms are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not belong to the model.
    pub fn add_constraint<I>(&mut self, terms: I, sense: Sense, rhs: i64)
    where
        I: IntoIterator<Item = (VarId, i64)>,
    {
        let mut combined: Vec<(VarId, i64)> = Vec::new();
        for (v, c) in terms {
            assert!(v.index() < self.objective.len(), "unknown variable {v}");
            match combined.iter_mut().find(|(w, _)| *w == v) {
                Some((_, acc)) => *acc += c,
                None => combined.push((v, c)),
            }
        }
        combined.retain(|&(_, c)| c != 0);
        self.constraints.push(Constraint {
            terms: combined,
            sense,
            rhs,
        });
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The raw objective vector (indexed by variable).
    pub fn objective(&self) -> &[i64] {
        &self.objective
    }

    /// Evaluates the objective for an assignment.
    pub fn objective_value(&self, values: &[bool]) -> i64 {
        self.objective
            .iter()
            .zip(values)
            .map(|(&c, &v)| if v { c } else { 0 })
            .sum()
    }

    /// `true` if the assignment satisfies every constraint.
    pub fn is_feasible(&self, values: &[bool]) -> bool {
        self.constraints.iter().all(|c| {
            let lhs: i64 = c
                .terms
                .iter()
                .map(|&(v, coef)| if values[v.index()] { coef } else { 0 })
                .sum();
            match c.sense {
                Sense::Le => lhs <= c.rhs,
                Sense::Ge => lhs >= c.rhs,
                Sense::Eq => lhs == c.rhs,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_are_indexed() {
        let mut m = Model::maximize();
        assert_eq!(m.add_var(), VarId(0));
        assert_eq!(m.add_var(), VarId(1));
        assert_eq!(m.add_vars(3), vec![VarId(2), VarId(3), VarId(4)]);
        assert_eq!(m.var_count(), 5);
    }

    #[test]
    fn duplicate_terms_combine() {
        let mut m = Model::maximize();
        let x = m.add_var();
        m.add_constraint([(x, 1), (x, 2)], Sense::Le, 2);
        assert_eq!(m.constraints()[0].terms, vec![(x, 3)]);
    }

    #[test]
    fn zero_terms_drop() {
        let mut m = Model::maximize();
        let x = m.add_var();
        let y = m.add_var();
        m.add_constraint([(x, 1), (y, 0)], Sense::Le, 1);
        assert_eq!(m.constraints()[0].terms, vec![(x, 1)]);
    }

    #[test]
    fn feasibility_and_objective() {
        let mut m = Model::maximize();
        let x = m.add_var();
        let y = m.add_var();
        m.set_objective_coeff(x, 3);
        m.set_objective_coeff(y, 2);
        m.add_constraint([(x, 1), (y, 1)], Sense::Le, 1);
        assert!(m.is_feasible(&[true, false]));
        assert!(!m.is_feasible(&[true, true]));
        assert_eq!(m.objective_value(&[true, false]), 3);
        assert_eq!(m.objective_value(&[false, true]), 2);
    }

    #[test]
    #[should_panic]
    fn foreign_variable_rejected() {
        let mut m = Model::maximize();
        m.add_constraint([(VarId(7), 1)], Sense::Le, 1);
    }
}
