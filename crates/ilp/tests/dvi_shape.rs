//! The exact shapes of the DVI constraint families, solved standalone:
//! a regression net for the `bilp` features the `dvi` crate leans on
//! (equality color rows, big-M implications, packing groups).

use bilp::{Model, Sense, SolveOptions, VarId};

/// Builds a miniature C1/C3/C5-style model: two vias within pitch,
/// each with two candidates sharing one location.
fn mini_dvi() -> (Model, Vec<VarId>, Vec<VarId>) {
    let mut m = Model::maximize();
    // D variables for 4 candidates.
    let d = m.add_vars(4);
    for &v in &d {
        m.set_objective_coeff(v, 1);
    }
    // C1: candidate pairs (0,1) belong to via A, (2,3) to via B.
    m.add_constraint([(d[0], 1), (d[1], 1)], Sense::Le, 1);
    m.add_constraint([(d[2], 1), (d[3], 1)], Sense::Le, 1);
    // C2: candidates 1 and 2 share a location.
    m.add_constraint([(d[1], 1), (d[2], 1)], Sense::Le, 1);
    // Color rows for the two vias: exactly one of three colors or
    // uncolorable (penalized).
    let mut colors = Vec::new();
    for _ in 0..2 {
        let c = m.add_vars(4); // o, g, b, u
        m.set_objective_coeff(c[3], -100);
        m.add_constraint(c.iter().map(|&v| (v, 1)), Sense::Eq, 1);
        colors.extend(c);
    }
    // Same-color pitch: the two vias must differ per color.
    for k in 0..3 {
        m.add_constraint([(colors[k], 1), (colors[4 + k], 1)], Sense::Le, 1);
    }
    (m, d, colors)
}

#[test]
fn mini_dvi_solves_to_two_insertions() {
    let (m, d, colors) = mini_dvi();
    let sol = m.solve(&SolveOptions::default());
    assert!(sol.is_optimal());
    // Both vias protected (2 insertions), no uncolorable via.
    let inserted = d.iter().filter(|v| sol.values[v.index()]).count();
    assert_eq!(inserted, 2);
    assert!(!sol.values[colors[3].index()]);
    assert!(!sol.values[colors[7].index()]);
    assert_eq!(sol.objective, 2);
    // The C2 conflict is respected.
    assert!(!(sol.values[d[1].index()] && sol.values[d[2].index()]));
}

#[test]
fn forcing_uncolorable_is_dominated() {
    // Adding a third mutually-conflicting via makes 3 colors exactly
    // sufficient; a fourth forces one uncolorable.
    let mut m = Model::maximize();
    let mut color_vars = Vec::new();
    let n = 4;
    for _ in 0..n {
        let c = m.add_vars(4);
        m.set_objective_coeff(c[3], -1);
        m.add_constraint(c.iter().map(|&v| (v, 1)), Sense::Eq, 1);
        color_vars.push(c);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            for (&ci, &cj) in color_vars[i].iter().zip(&color_vars[j]).take(3) {
                m.add_constraint([(ci, 1), (cj, 1)], Sense::Le, 1);
            }
        }
    }
    let sol = m.solve(&SolveOptions::default());
    assert!(sol.is_optimal());
    // K4 with 3 colors: exactly one vertex is uncolorable.
    let uncolored = color_vars
        .iter()
        .filter(|c| sol.values[c[3].index()])
        .count();
    assert_eq!(uncolored, 1);
    assert_eq!(sol.objective, -1);
}
