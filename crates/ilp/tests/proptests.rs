//! Property-based validation of the branch-and-bound solver against
//! exhaustive enumeration.

use proptest::prelude::*;

use bilp::{Model, Sense, SolveOptions, SolveStatus, VarId};

type RandomRow = (Vec<(usize, i64)>, u8, i64);

#[derive(Debug, Clone)]
struct RandomModel {
    n: usize,
    obj: Vec<i64>,
    rows: Vec<RandomRow>,
    minimize: bool,
}

fn arb_model() -> impl Strategy<Value = RandomModel> {
    (2usize..10, any::<bool>()).prop_flat_map(|(n, minimize)| {
        let obj = proptest::collection::vec(-8i64..9, n);
        let row = (
            proptest::collection::vec((0usize..n, -4i64..5), 1..n + 1),
            0u8..3,
            -3i64..6,
        );
        let rows = proptest::collection::vec(row, 0..6);
        (Just(n), obj, rows, Just(minimize)).prop_map(|(n, obj, rows, minimize)| RandomModel {
            n,
            obj,
            rows,
            minimize,
        })
    })
}

fn build(m: &RandomModel) -> Model {
    let mut model = if m.minimize {
        Model::minimize()
    } else {
        Model::maximize()
    };
    let vars = model.add_vars(m.n);
    for (i, &c) in m.obj.iter().enumerate() {
        model.set_objective_coeff(vars[i], c);
    }
    for (terms, sense, rhs) in &m.rows {
        let sense = match sense {
            0 => Sense::Le,
            1 => Sense::Ge,
            _ => Sense::Eq,
        };
        model.add_constraint(
            terms.iter().map(|&(v, c)| (VarId(v as u32), c)),
            sense,
            *rhs,
        );
    }
    model
}

fn brute(model: &Model, minimize: bool) -> Option<i64> {
    let n = model.var_count();
    let mut best: Option<i64> = None;
    for mask in 0u32..(1 << n) {
        let values: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        if model.is_feasible(&values) {
            let o = model.objective_value(&values);
            best = Some(match best {
                None => o,
                Some(b) => {
                    if minimize {
                        b.min(o)
                    } else {
                        b.max(o)
                    }
                }
            });
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Branch and bound matches exhaustive search on random models,
    /// in both directions, and returned assignments are feasible.
    #[test]
    fn solver_is_exact(m in arb_model()) {
        let model = build(&m);
        let sol = model.solve(&SolveOptions::default());
        match brute(&model, m.minimize) {
            Some(best) => {
                prop_assert_eq!(sol.status, SolveStatus::Optimal);
                prop_assert!(model.is_feasible(&sol.values));
                prop_assert_eq!(sol.objective, best);
                prop_assert_eq!(sol.objective, model.objective_value(&sol.values));
                prop_assert_eq!(sol.best_bound, sol.objective);
            }
            None => prop_assert_eq!(sol.status, SolveStatus::Infeasible),
        }
    }

    /// Warm starts never change the optimum.
    #[test]
    fn warm_start_preserves_optimum(m in arb_model(), ws_mask in any::<u32>()) {
        let model = build(&m);
        let cold = model.solve(&SolveOptions::default());
        let ws: Vec<bool> = (0..m.n).map(|i| ws_mask & (1 << i) != 0).collect();
        let warm = model.solve(&SolveOptions {
            warm_start: Some(ws),
            ..SolveOptions::default()
        });
        prop_assert_eq!(cold.status, warm.status);
        if cold.status == SolveStatus::Optimal {
            prop_assert_eq!(cold.objective, warm.objective);
        }
    }
}
