//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this local
//! path crate provides exactly the API surface the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, and [`rngs::SmallRng`]. The generator is SplitMix64 — a
//! different stream than upstream `rand`'s SmallRng, so seeded outputs
//! differ from builds against the real crate, but determinism and
//! statistical quality are equivalent for test/benchmark generation.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling interface (subset of upstream `rand`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a uniform value of type `T`.
    fn r#gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable uniformly over their whole domain (the upstream
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`; panics on an empty range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain 64-bit inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u32> = (0..16).map(|_| a.gen_range(0u32..1000)).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.gen_range(0u32..1000)).collect();
        let zs: Vec<u32> = (0..16).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.gen_range(5i32..5);
    }

    #[test]
    fn bool_and_standard_sampling() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..1000 {
            if rng.r#gen::<bool>() {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "biased bool: {trues}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
