//! Deterministic seeded fault injection for chaos testing.
//!
//! Library crates call cheap hooks at named *failpoints*
//! ([`should_fail`], [`maybe_panic`], [`maybe_delay`]). In production
//! the hooks are a single relaxed atomic load (no plan armed → no
//! work). Chaos tests arm a [`FaultSpec`] with a seed; whether the
//! n-th hit of a failpoint fires is then a pure function of
//! `(seed, failpoint name, occurrence index)`, so failures are
//! reproducible across runs and thread counts as long as each thread
//! hits the point in a deterministic order — and statistically stable
//! regardless.
//!
//! Failpoints currently wired into the workspace:
//!
//! | name                | effect when fired                        |
//! |---------------------|------------------------------------------|
//! | `dvi.solver_abort`  | DVI ILP solve aborts (panics internally; caught by the resilient wrapper) |
//! | `core.slow_phase`   | routing phase sleeps for the armed delay |
//! | `exec.task_panic`   | a pool worker task panics                |
//! | `io.torn_write`     | a journal append persists only a byte prefix, then the journal goes dead (simulated crash mid-write) |
//! | `io.fsync_fail`     | a journal fsync reports failure; the accepting `submit` returns a typed error |
//! | `io.short_read`     | a journal recovery scan sees a truncated tail (simulated partially-persisted file) |
//!
//! ```
//! let _guard = faultinject::arm(
//!     7,
//!     faultinject::FaultSpec::new().point("exec.task_panic", 0.5),
//! );
//! assert!(faultinject::is_armed());
//! // ... run the system under test; ~half the task hits panic ...
//! drop(_guard); // disarms
//! assert!(!faultinject::is_armed());
//! ```
//!
//! Arming is process-global: tests that arm faults must serialize
//! (e.g. behind a shared `Mutex`) or they will see each other's plans.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fast-path flag: `true` while a plan is armed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// The armed plan, if any. Locked only on the slow path.
static PLAN: Mutex<Option<Plan>> = Mutex::new(None);

struct Plan {
    seed: u64,
    /// failpoint name → probability of firing per hit.
    points: HashMap<String, f64>,
    /// Sleep length for [`maybe_delay`] failpoints.
    delay: Duration,
    /// failpoint name → number of hits observed so far.
    hits: HashMap<String, u64>,
}

/// Which failpoints fire with which probability.
///
/// Build with [`FaultSpec::new`] and chained [`FaultSpec::point`] /
/// [`FaultSpec::delay`] calls, then pass to [`arm`].
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    points: Vec<(String, f64)>,
    delay: Duration,
}

impl FaultSpec {
    /// An empty spec: no failpoint fires.
    pub fn new() -> FaultSpec {
        FaultSpec::default()
    }

    /// Arms failpoint `name` with per-hit probability `p`
    /// (`p >= 1.0` fires every hit, `p <= 0.0` never fires).
    pub fn point(mut self, name: &str, p: f64) -> FaultSpec {
        self.points.push((name.to_string(), p));
        self
    }

    /// Sleep length used when a delay failpoint fires (default 0).
    pub fn delay(mut self, d: Duration) -> FaultSpec {
        self.delay = d;
        self
    }
}

/// RAII guard returned by [`arm`]; disarms all failpoints on drop.
#[must_use = "faults disarm when the guard drops"]
pub struct FaultGuard(());

impl Drop for FaultGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arms `spec` process-globally under `seed`, replacing any previous
/// plan. Returns a guard that disarms on drop.
pub fn arm(seed: u64, spec: FaultSpec) -> FaultGuard {
    let plan = Plan {
        seed,
        points: spec.points.into_iter().collect(),
        delay: spec.delay,
        hits: HashMap::new(),
    };
    {
        let mut slot = lock_plan();
        *slot = Some(plan);
    }
    ARMED.store(true, Ordering::Release);
    FaultGuard(())
}

/// Disarms all failpoints immediately (also done by the guard drop).
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    let mut slot = lock_plan();
    *slot = None;
}

/// `true` while a fault plan is armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Records a hit on failpoint `name` and decides whether it fires.
///
/// Deterministic: the decision for the n-th hit of a point depends
/// only on `(seed, name, n)`.
pub fn should_fail(name: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let mut slot = lock_plan();
    let Some(plan) = slot.as_mut() else {
        return false;
    };
    let Some(&p) = plan.points.get(name) else {
        return false;
    };
    let hit = plan.hits.entry(name.to_string()).or_insert(0);
    let occurrence = *hit;
    *hit += 1;
    if p >= 1.0 {
        return true;
    }
    if p <= 0.0 {
        return false;
    }
    let mut rng = SmallRng::seed_from_u64(
        plan.seed ^ fnv1a(name) ^ occurrence.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    rng.gen_bool(p)
}

/// Panics with `"fault injected: {name}"` when the failpoint fires.
pub fn maybe_panic(name: &str) {
    if should_fail(name) {
        panic!("fault injected: {name}");
    }
}

/// Sleeps for the armed delay when the failpoint fires.
pub fn maybe_delay(name: &str) {
    let d = {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        let slot = lock_plan();
        match slot.as_ref() {
            Some(plan) => plan.delay,
            None => return,
        }
    };
    if should_fail(name) && !d.is_zero() {
        std::thread::sleep(d);
    }
}

fn lock_plan() -> std::sync::MutexGuard<'static, Option<Plan>> {
    // A panicked holder only ever poisons the lock between plain map
    // operations; the plan data stays consistent, so keep going.
    match PLAN.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// FNV-1a hash of a failpoint name, used to decorrelate points that
/// share a seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global state: tests in this module serialize themselves.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn unarmed_is_inert() {
        let _t = test_guard();
        disarm();
        assert!(!is_armed());
        assert!(!should_fail("dvi.solver_abort"));
        maybe_panic("dvi.solver_abort");
        maybe_delay("core.slow_phase");
    }

    #[test]
    fn certain_point_always_fires_and_guard_disarms() {
        let _t = test_guard();
        {
            let _g = arm(1, FaultSpec::new().point("x", 1.0));
            assert!(is_armed());
            for _ in 0..10 {
                assert!(should_fail("x"));
            }
            assert!(!should_fail("y"), "unlisted point never fires");
        }
        assert!(!is_armed());
        assert!(!should_fail("x"));
    }

    #[test]
    fn zero_probability_never_fires() {
        let _t = test_guard();
        let _g = arm(2, FaultSpec::new().point("x", 0.0));
        for _ in 0..100 {
            assert!(!should_fail("x"));
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_occurrence() {
        let _t = test_guard();
        let run = |seed: u64| -> Vec<bool> {
            let _g = arm(seed, FaultSpec::new().point("x", 0.5));
            (0..64).map(|_| should_fail("x")).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed replays the same decisions");
        assert_ne!(a, c, "different seed gives a different pattern");
        assert!(
            a.iter().any(|&f| f) && a.iter().any(|&f| !f),
            "p=0.5 mixes outcomes: {a:?}"
        );
    }

    #[test]
    fn maybe_panic_fires() {
        let _t = test_guard();
        let _g = arm(3, FaultSpec::new().point("x", 1.0));
        let err = std::panic::catch_unwind(|| maybe_panic("x")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("fault injected: x"), "{msg}");
    }
}
