//! End-to-end integration: generate → route → audit → DVI, across
//! both SADP processes and all four experiment arms.

use sadp_dvi::prelude::*;
use sadp_dvi::tpl::{vias_conflict, FvpIndex};

fn spec() -> BenchSpec {
    BenchSpec::paper_suite()[0].scaled(0.03)
}

#[test]
fn full_arm_is_clean_for_both_processes() {
    for kind in SadpKind::ALL {
        let netlist = spec().generate(11);
        let grid = spec().grid();
        // The staged session borrows grid and netlist — no clones.
        let out = RoutingSession::new(&grid, &netlist, RouterConfig::full(kind))
            .run_with(&mut NoopObserver);
        assert!(out.routed_all, "{kind}: routability");
        assert!(out.congestion_free, "{kind}: congestion");
        assert!(out.fvp_free, "{kind}: FVPs");
        assert!(out.colorable, "{kind}: colorability");
        let audit = full_audit(kind, &out.solution, &netlist);
        assert!(audit.is_clean(), "{kind}: {audit:?}");
    }
}

/// The SIM-with-trim variant (paper §I: "can be easily adapted to
/// other SADP variants") routes end to end with the same guarantees.
#[test]
fn sim_trim_variant_works_end_to_end() {
    let kind = SadpKind::SimTrim;
    let netlist = spec().generate(11);
    let grid = spec().grid();
    let out =
        RoutingSession::new(&grid, &netlist, RouterConfig::full(kind)).run_with(&mut NoopObserver);
    assert!(out.routed_all && out.congestion_free && out.fvp_free && out.colorable);
    let audit = full_audit(kind, &out.solution, &netlist);
    assert!(audit.is_clean(), "{audit:?}");
    let problem = DviProblem::build(kind, &out.solution);
    let dvi = solve_heuristic(&problem, &DviParams::default());
    assert_eq!(dvi.uncolorable_count, 0);
}

#[test]
fn all_arms_route_everything() {
    let kind = SadpKind::Sim;
    let configs = [
        RouterConfig::baseline(kind),
        RouterConfig::with_dvi(kind),
        RouterConfig::with_tpl(kind),
        RouterConfig::full(kind),
    ];
    let netlist = spec().generate(3);
    let grid = spec().grid();
    for config in configs {
        let out = RoutingSession::new(&grid, &netlist, config).run_with(&mut NoopObserver);
        assert!(out.routed_all && out.congestion_free);
        // Always SADP-legal and short-free, whatever the arm.
        let audit = full_audit(kind, &out.solution, &netlist);
        assert_eq!(audit.disconnected, 0);
        assert_eq!(audit.shorts, 0);
        assert_eq!(audit.forbidden_turns, 0);
    }
}

#[test]
fn dvi_solvers_respect_all_constraints() {
    let netlist = spec().generate(7);
    let out = Router::new(spec().grid(), netlist, RouterConfig::full(SadpKind::Sim))
        .try_run(&mut NoopObserver)
        .expect("full flow");
    let problem = DviProblem::build(SadpKind::Sim, &out.solution);
    let heur = solve_heuristic(&problem, &DviParams::default());
    let (ilp, stats) = solve_ilp_lazy(&problem, &LazyIlpOptions::default());
    assert!(stats.proven_optimal);
    // The exact solver can only do at least as well.
    assert!(ilp.dead_via_count <= heur.dead_via_count);

    for outcome in [&heur, &ilp] {
        // One redundant via per single via.
        let mut per_via = vec![0usize; problem.via_count()];
        for &c in &outcome.inserted {
            per_via[problem.candidates()[c as usize].via_idx as usize] += 1;
        }
        assert!(per_via.iter().all(|&k| k <= 1));
        // Conflicts respected.
        for &(a, b) in problem.conflicts() {
            assert!(!(outcome.inserted.contains(&a) && outcome.inserted.contains(&b)));
        }
        // No FVP on any layer after insertion.
        for layer in problem.via_layers() {
            let mut idx = FvpIndex::new(problem.grid_width().max(3), problem.grid_height().max(3));
            for (x, y) in problem.existing_on_layer(layer) {
                idx.add_via(x, y);
            }
            for &c in &outcome.inserted {
                let cand = &problem.candidates()[c as usize];
                if cand.via_layer == layer {
                    idx.add_via(cand.loc.0, cand.loc.1);
                }
            }
            assert!(idx.fvp_windows().is_empty());
        }
        // Final coloring is proper.
        let mut all: Vec<((u8, i32, i32), u8)> = Vec::new();
        for (i, pv) in problem.vias().iter().enumerate() {
            if let Some(c) = outcome.via_colors[i] {
                all.push(((pv.via.below, pv.via.x, pv.via.y), c));
            }
        }
        for (k, &ci) in outcome.inserted.iter().enumerate() {
            let cand = &problem.candidates()[ci as usize];
            all.push((
                (cand.via_layer, cand.loc.0, cand.loc.1),
                outcome.inserted_colors[k],
            ));
        }
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                let ((la, xa, ya), ca) = all[i];
                let ((lb, xb, yb), cb) = all[j];
                if la == lb && vias_conflict(xb - xa, yb - ya) {
                    assert_ne!(ca, cb);
                }
            }
        }
        assert_eq!(outcome.uncolorable_count, 0);
    }
}

#[test]
fn paper_shape_dead_vias_fall_with_consideration() {
    // Average over a few seeds to damp noise on the tiny instance.
    let kind = SadpKind::Sim;
    let mut dead_base = 0usize;
    let mut dead_full = 0usize;
    let grid = spec().grid();
    for seed in [1, 2, 3] {
        let netlist = spec().generate(seed);
        let base = RoutingSession::new(&grid, &netlist, RouterConfig::baseline(kind))
            .run_with(&mut NoopObserver);
        let full = RoutingSession::new(&grid, &netlist, RouterConfig::full(kind))
            .run_with(&mut NoopObserver);
        let pb = DviProblem::build(kind, &base.solution);
        let pf = DviProblem::build(kind, &full.solution);
        dead_base += solve_heuristic(&pb, &DviParams::default()).dead_via_count;
        dead_full += solve_heuristic(&pf, &DviParams::default()).dead_via_count;
        // UV must be zero whenever via-layer TPL is considered.
        assert_eq!(
            solve_heuristic(&pf, &DviParams::default()).uncolorable_count,
            0
        );
    }
    assert!(
        dead_full <= dead_base,
        "dead vias should not increase with full consideration: {dead_full} vs {dead_base}"
    );
}

/// Datapath-style (bus-heavy) netlists concentrate vias in columns —
/// a harder TPL stress than the random-logic mixture — and must still
/// come out clean.
#[test]
fn bus_style_netlists_route_clean() {
    let s = spec();
    let netlist = s.generate_bus_style(3, 0.6);
    let grid = s.grid();
    let out = RoutingSession::new(&grid, &netlist, RouterConfig::full(SadpKind::Sim))
        .run_with(&mut NoopObserver);
    assert!(out.routed_all && out.congestion_free && out.fvp_free && out.colorable);
    let audit = full_audit(SadpKind::Sim, &out.solution, &netlist);
    assert!(audit.is_clean(), "{audit:?}");
    let problem = DviProblem::build(SadpKind::Sim, &out.solution);
    let dvi = solve_heuristic(&problem, &DviParams::default());
    assert_eq!(dvi.uncolorable_count, 0);
}

/// The strongest decomposability check: synthesize the actual SADP
/// masks of every routed layer and run the whole-layer DRC.
#[test]
fn router_output_is_mask_drc_clean() {
    for kind in [SadpKind::Sim, SadpKind::Sid] {
        let netlist = spec().generate(13);
        let out = Router::new(spec().grid(), netlist, RouterConfig::full(kind))
            .try_run(&mut NoopObserver)
            .expect("full flow");
        let violations = mask_audit(kind, &out.solution)
            .unwrap_or_else(|(l, e)| panic!("{kind}: layer {l} undecomposable: {e}"));
        assert_eq!(violations, 0, "{kind}: mask DRC violations");
    }
}

#[test]
fn runs_are_deterministic() {
    let netlist_a = spec().generate(5);
    let netlist_b = spec().generate(5);
    assert_eq!(netlist_a, netlist_b);
    let a = Router::new(spec().grid(), netlist_a, RouterConfig::full(SadpKind::Sim))
        .try_run(&mut NoopObserver)
        .expect("full flow");
    let b = Router::new(spec().grid(), netlist_b, RouterConfig::full(SadpKind::Sim))
        .try_run(&mut NoopObserver)
        .expect("full flow");
    assert_eq!(a.stats, b.stats);
    let pa = DviProblem::build(SadpKind::Sim, &a.solution);
    let pb = DviProblem::build(SadpKind::Sim, &b.solution);
    let ha = solve_heuristic(&pa, &DviParams::default());
    let hb = solve_heuristic(&pb, &DviParams::default());
    assert_eq!(ha.inserted, hb.inserted);
    assert_eq!(ha.dead_via_count, hb.dead_via_count);
}
