//! Scale-axis contracts: benchgen must produce stable, correctly
//! scaled instances from factor 0.05 up to full size plus the 10⁵-net
//! synthetic range, and the routing kernel must behave identically
//! across its two open-set implementations at any of them.

use benchgen::BenchSpec;
use sadp_grid::{read_netlist, write_netlist, NetId, SadpKind};
use sadp_router::dijkstra::route_net;
use sadp_router::state::RouterState;
use sadp_router::{CostParams, QueueKind, SearchScratch};

/// FNV-1a over a text document: the fingerprint primitive used across
/// the repo's determinism pins.
fn fnv(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One rounding rule across the whole scale axis: `scaled` rounds the
/// net count, and `generate_bus_style` must round the bus share the
/// same way instead of truncating (the issue-7 drift bug).
#[test]
fn factor_sweep_applies_one_rounding_rule() {
    for spec in BenchSpec::paper_suite() {
        for factor in [0.05, 0.1, 0.25, 0.5, 1.0] {
            let s = spec.scaled(factor);
            assert_eq!(
                s.nets,
                ((spec.nets as f64 * factor).round() as usize).max(1),
                "{} @ {factor}: net count must round",
                spec.name
            );
            assert!(s.width >= 24 && s.height >= 24);
            if factor == 1.0 {
                assert_eq!(s, spec, "factor 1.0 must be the identity");
            }
        }
    }
    // Bus share at a small factor: ecc @ 0.05 = 84 nets, fraction 0.1
    // -> 8.4 -> 8 bus nets (was non-deterministically lower with the
    // truncation bug only when the product had a fractional part; the
    // pinned generator hits the rounded target on this loose die).
    let s = BenchSpec::by_name("ecc").unwrap().scaled(0.05);
    let nl = s.generate_bus_style(1, 0.1);
    let bus = nl.iter().filter(|(_, n)| n.name().contains("_bus")).count();
    assert_eq!(bus, ((s.nets as f64 * 0.1).round() as usize).min(s.nets));
}

/// Generated instances at the existing benchmark scales are pinned by
/// fingerprint: any change to the generator shifts every committed
/// benchmark baseline, so it must be loud.
#[test]
fn generation_fingerprints_are_stable_at_existing_scales() {
    let pins = [
        ("ecc", 0.05, 1u64, 0x5247c822cf35d742u64),
        ("ecc", 0.1, 1, 0x6ed74674e7a8c7a8),
        ("alu", 0.1, 1, 0x93ff3c80921f925e),
    ];
    for (name, factor, seed, want) in pins {
        let spec = BenchSpec::by_name(name).unwrap().scaled(factor);
        let text = write_netlist(&spec.grid(), &spec.generate(seed));
        assert_eq!(
            fnv(&text),
            want,
            "{name} @ {factor} seed {seed}: generator output drifted \
             (got 0x{:016x})",
            fnv(&text)
        );
    }
}

/// The Dial bucket queue and the reference binary heap must route
/// byte-identically through the public kernel path, at a scale large
/// enough to exercise window escalation and installed-route penalties.
#[test]
fn dial_and_heap_queues_route_identically_at_scale() {
    let spec = BenchSpec::by_name("ecc").unwrap().scaled(0.1);
    let nl = spec.generate(1);
    let mut results = Vec::new();
    for kind in [QueueKind::Dial, QueueKind::Heap] {
        let mut st = RouterState::new(
            spec.grid(),
            &nl,
            SadpKind::Sim,
            CostParams::default(),
            true,
            true,
        );
        let mut scratch = SearchScratch::with_queue(kind);
        let mut routes = Vec::new();
        let ids: Vec<NetId> = nl.iter().map(|(id, _)| id).collect();
        for id in ids {
            if let Some(r) = route_net(&st, id, &nl[id], &mut scratch) {
                st.install_route(id, r.clone());
                routes.push((id, r));
            }
        }
        results.push((routes, scratch.expanded, scratch.searches));
    }
    assert_eq!(
        results[0].0, results[1].0,
        "route divergence between queues"
    );
    assert_eq!(results[0].1, results[1].1, "expansion-count divergence");
    assert_eq!(results[0].2, results[1].2, "search-count divergence");
}

/// A 10⁵-net synthetic instance survives the full data path —
/// generation, serialization round-trip, state construction, and
/// routing a sample of nets — without panicking or tripping a cap.
/// Ignored by default: takes minutes at full size.
#[test]
#[ignore = "10^5-net instance: run explicitly with --ignored"]
fn synthetic_100k_net_instance_routes_without_panic() {
    let spec = BenchSpec::synthetic(100_000);
    let nl = spec.generate(1);
    assert!(
        nl.len() >= 95_000,
        "die too crowded: only {} of 100000 nets placed",
        nl.len()
    );
    // io round-trip preserves the instance exactly.
    let text = write_netlist(&spec.grid(), &nl);
    let (grid2, nl2) = read_netlist(&text).expect("roundtrip parse");
    assert_eq!(nl2, nl);
    assert_eq!(grid2.width(), spec.width);
    // Route a deterministic sample spread across the instance; the
    // interesting part is that big-coordinate state keys, paged
    // windows, and the Dial queue all engage without panic.
    let st = RouterState::new(grid2, &nl, SadpKind::Sim, CostParams::default(), true, true);
    let mut scratch = SearchScratch::new();
    let mut routed = 0usize;
    for (id, net) in nl.iter().step_by(97).take(400) {
        if route_net(&st, id, net, &mut scratch).is_some() {
            routed += 1;
        }
    }
    assert!(routed >= 390, "only {routed}/400 sampled nets routed");
}
