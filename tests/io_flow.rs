//! Persisting and reloading a routed design through the text formats,
//! then re-auditing it — the workflow a downstream user scripting the
//! suite would follow.

use sadp_dvi::grid::{read_netlist, read_solution, write_netlist, write_solution};
use sadp_dvi::prelude::*;

#[test]
fn route_save_reload_audit() {
    let spec = BenchSpec::paper_suite()[0].scaled(0.02);
    let netlist = spec.generate(21);
    let out = Router::new(
        spec.grid(),
        netlist.clone(),
        RouterConfig::full(SadpKind::Sim),
    )
    .try_run(&mut NoopObserver)
    .expect("full flow");
    assert!(out.routed_all);

    // Save both artifacts.
    let nl_text = write_netlist(&spec.grid(), &netlist);
    let sol_text = write_solution(&out.solution);

    // Reload into fresh objects.
    let (grid2, netlist2) = read_netlist(&nl_text).expect("netlist parses");
    assert_eq!(netlist, netlist2);
    let solution2 = read_solution(grid2, &netlist2, &sol_text).expect("solution parses");
    assert_eq!(out.solution.stats(), solution2.stats());

    // The reloaded solution audits exactly like the original.
    let a = full_audit(SadpKind::Sim, &out.solution, &netlist);
    let b = full_audit(SadpKind::Sim, &solution2, &netlist2);
    assert_eq!(a, b);
    assert!(b.is_clean());
}
