//! Chaos suite: deterministic fault injection against the full
//! routing flow.
//!
//! The resilience contract under test: **any** combination of armed
//! failpoints and resource budgets (including a zero budget) yields
//! either `Ok(outcome)` — possibly partial, tagged with its
//! [`Termination`] reason — or a typed [`RouteError`]. Never a panic,
//! never a hang.
//!
//! The fault plan is process-global, so every test serializes on one
//! mutex; within a test the plan is seeded and therefore the whole
//! suite is deterministic.

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use faultinject::FaultSpec;
use sadp_dvi::prelude::*;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    // A test that failed while holding the lock poisons it; the data
    // is `()`, so the poison carries no hazard.
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The four experiment arms of the paper's tables.
fn arms(kind: SadpKind) -> [RouterConfig; 4] {
    [
        RouterConfig::baseline(kind),
        RouterConfig::with_dvi(kind),
        RouterConfig::with_tpl(kind),
        RouterConfig::full(kind),
    ]
}

fn tiny_instance() -> (RoutingGrid, Netlist) {
    let spec = BenchSpec::paper_suite()[0].scaled(0.01);
    (spec.grid(), spec.generate(1))
}

/// Runs one session to the end under whatever faults are armed and
/// asserts the resilience contract.
fn assert_contract(grid: &RoutingGrid, netlist: &Netlist, config: RouterConfig) {
    let session = RoutingSession::try_new(grid, netlist, config).expect("inputs are valid");
    match session.try_finish(&mut NoopObserver) {
        Ok(outcome) => {
            // A partial outcome must still be internally consistent.
            outcome
                .solution
                .validate()
                .expect("outcome solution is well-formed");
        }
        Err(RouteError::TaskPanicked { .. }) | Err(RouteError::Solver { .. }) => {}
        Err(other) => panic!("unexpected error class: {other}"),
    }
}

#[test]
fn worker_panics_never_escape_any_arm() {
    let _g = lock();
    let (grid, netlist) = tiny_instance();
    for kind in [SadpKind::Sim, SadpKind::Sid] {
        for config in arms(kind) {
            for p in [0.5, 1.0] {
                let _f = faultinject::arm(42, FaultSpec::new().point("exec.task_panic", p));
                assert_contract(&grid, &netlist, config);
            }
        }
    }
}

#[test]
fn wave_panics_roll_back_and_never_poison_occupancy() {
    let _g = lock();
    let (grid, netlist) = tiny_instance();
    for threads in [2usize, 4] {
        sadp_exec::with_threads(threads, || {
            // Leg 1: the contract holds while panics fire inside the
            // sharded waves.
            for p in [0.5, 1.0] {
                let _f = faultinject::arm(42, FaultSpec::new().point("exec.task_panic", p));
                assert_contract(&grid, &netlist, RouterConfig::full(SadpKind::Sim));
            }
            // Leg 2: a panicked wave rolls the state back to a valid
            // between-iterations point — after disarming, the same
            // session must still finish with a well-formed solution.
            let mut session =
                RoutingSession::try_new(&grid, &netlist, RouterConfig::full(SadpKind::Sim))
                    .expect("inputs are valid");
            {
                let _f = faultinject::arm(7, FaultSpec::new().point("exec.task_panic", 1.0));
                session.initial_route(&mut NoopObserver);
                session.negotiate(&mut NoopObserver);
            }
            session
                .solution()
                .validate()
                .expect("occupancy survives a rolled-back wave");
            match session.try_finish(&mut NoopObserver) {
                Ok(out) => out
                    .solution
                    .validate()
                    .map(|_| ())
                    .expect("finished solution is well-formed"),
                Err(RouteError::TaskPanicked { .. }) => {}
                Err(other) => panic!("unexpected error class: {other}"),
            }
        });
    }
}

#[test]
fn slow_phases_respect_the_deadline() {
    let _g = lock();
    let (grid, netlist) = tiny_instance();
    let _f = faultinject::arm(
        7,
        FaultSpec::new()
            .point("core.slow_phase", 1.0)
            .delay(Duration::from_millis(30)),
    );
    let start = Instant::now();
    let mut session = RoutingSession::try_new(&grid, &netlist, RouterConfig::full(SadpKind::Sim))
        .expect("inputs are valid");
    session.set_budget(RouteBudget::unlimited().with_deadline(Duration::from_millis(1)));
    let out = session
        .try_finish(&mut NoopObserver)
        .expect("no worker faults armed");
    // The injected delay outlives the deadline before the first
    // routing iteration: a valid partial outcome, tagged.
    assert_eq!(out.termination, Termination::Deadline);
    assert!(!out.routed_all);
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "budgeted run must stay bounded"
    );
}

#[test]
fn zero_budget_yields_tagged_partial_outcomes_everywhere() {
    let _g = lock();
    let (grid, netlist) = tiny_instance();
    for kind in [SadpKind::Sim, SadpKind::Sid] {
        for config in arms(kind) {
            let mut session =
                RoutingSession::try_new(&grid, &netlist, config).expect("inputs are valid");
            session.set_budget(RouteBudget::unlimited().with_deadline(Duration::ZERO));
            let out = session
                .try_finish(&mut NoopObserver)
                .expect("no faults armed");
            assert_eq!(out.termination, Termination::Deadline);
            assert!(!out.routed_all);
        }
    }
}

#[test]
fn dvi_solver_abort_degrades_to_the_heuristic() {
    let _g = lock();
    let (grid, netlist) = tiny_instance();
    let outcome = RoutingSession::try_new(&grid, &netlist, RouterConfig::full(SadpKind::Sim))
        .expect("inputs are valid")
        .try_finish(&mut NoopObserver)
        .expect("routing succeeds without faults");
    let problem =
        DviProblem::try_build(SadpKind::Sim, &outcome.solution).expect("solution is valid");
    let _f = faultinject::arm(3, FaultSpec::new().point("dvi.solver_abort", 1.0));
    for solver in [DviSolver::Ilp, DviSolver::IlpLazy] {
        let options = ResilientDviOptions {
            solver,
            ..ResilientDviOptions::default()
        };
        let r = solve_resilient(&problem, &options, &mut NoopObserver)
            .expect("the heuristic fallback must produce a result");
        assert_eq!(r.solver_used, DviSolver::Heuristic);
        assert!(r.degraded());
    }
}

#[test]
fn all_failpoints_at_once_hold_the_contract() {
    let _g = lock();
    let (grid, netlist) = tiny_instance();
    let start = Instant::now();
    for seed in [1u64, 2, 3] {
        let _f = faultinject::arm(
            seed,
            FaultSpec::new()
                .point("exec.task_panic", 0.3)
                .point("core.slow_phase", 0.5)
                .point("dvi.solver_abort", 1.0)
                .delay(Duration::from_millis(5)),
        );
        for kind in [SadpKind::Sim, SadpKind::Sid] {
            for config in arms(kind) {
                assert_contract(&grid, &netlist, config);
            }
        }
    }
    assert!(
        start.elapsed() < Duration::from_secs(120),
        "chaos matrix must stay bounded"
    );
}
