//! Cross-crate property-based tests (proptest): random netlists and
//! layouts must uphold the suite's invariants end to end.

use proptest::prelude::*;

use sadp_dvi::grid::{Dir, TurnKind};
use sadp_dvi::prelude::*;
use sadp_dvi::sadp::{classify_turn, stub_turn_ok, TurnClass};
use sadp_dvi::tpl::{welsh_powell, window_is_3colorable_bruteforce, window_is_fvp, DecompGraph};

/// Strategy: a handful of pins with enforced spacing on a small grid.
fn arb_netlist(grid: i32) -> impl Strategy<Value = Netlist> {
    proptest::collection::vec((2..grid - 2, 2..grid - 2), 4..16).prop_map(move |raw| {
        // Enforce pairwise Chebyshev spacing >= 3 by filtering.
        let mut pins: Vec<(i32, i32)> = Vec::new();
        for (x, y) in raw {
            if pins
                .iter()
                .all(|&(px, py)| (px - x).abs().max((py - y).abs()) >= 3)
            {
                pins.push((x, y));
            }
        }
        let mut nl = Netlist::new();
        // Pair consecutive pins into 2-pin nets.
        for pair in pins.chunks(2) {
            if let [a, b] = pair {
                nl.push(Net::new(
                    format!("n{}", nl.len()),
                    vec![Pin::new(a.0, a.1), Pin::new(b.0, b.1)],
                ));
            }
        }
        if nl.is_empty() {
            nl.push(Net::new("fallback", vec![Pin::new(2, 2), Pin::new(8, 8)]));
        }
        nl
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the random netlist, the full flow yields a clean,
    /// audited solution and a UV-free DVI pass.
    #[test]
    fn random_netlists_route_clean(nl in arb_netlist(28), sim in any::<bool>()) {
        let kind = if sim { SadpKind::Sim } else { SadpKind::Sid };
        let grid = RoutingGrid::three_layer(28, 28);
        let out = Router::new(grid, nl.clone(), RouterConfig::full(kind))
            .try_run(&mut NoopObserver)
            .expect("full flow");
        prop_assert!(out.routed_all);
        let audit = full_audit(kind, &out.solution, &nl);
        prop_assert!(audit.is_clean(), "{audit:?}");
        let problem = DviProblem::build(kind, &out.solution);
        let dvi = solve_heuristic(&problem, &DviParams::default());
        prop_assert_eq!(dvi.uncolorable_count, 0);
        prop_assert!(dvi.inserted_count() + dvi.dead_via_count == problem.via_count());
    }

    /// The O(1) FVP rules agree with brute-force window coloring on
    /// arbitrary via subsets (beyond the exhaustive 512 unit test,
    /// this exercises the duplicate-handling path).
    #[test]
    fn fvp_rules_match_bruteforce(mask in 0u32..512, dup in 0usize..9) {
        let mut vias: Vec<(i32, i32)> = (0..9)
            .filter(|b| mask & (1 << b) != 0)
            .map(|b| (b % 3, b / 3))
            .collect();
        if !vias.is_empty() {
            let d = vias[dup % vias.len()];
            vias.push(d); // duplicates must not change the answer
        }
        prop_assert_eq!(window_is_fvp(&vias), !window_is_3colorable_bruteforce(&vias));
    }

    /// Welsh–Powell colorings are always proper, on any via cloud.
    #[test]
    fn greedy_colorings_are_proper(
        pts in proptest::collection::vec((0i32..20, 0i32..20), 0..40)
    ) {
        let g = DecompGraph::from_positions(pts);
        let out = welsh_powell(&g, 3);
        prop_assert!(g.coloring_conflicts(&out.colors).is_empty());
    }

    /// Turn classification is parity-periodic and stub exceptions only
    /// ever relax (never tighten) the classification.
    #[test]
    fn stub_rules_only_relax(x in -8i32..8, y in -8i32..8, sim in any::<bool>()) {
        let kind = if sim { SadpKind::Sim } else { SadpKind::Sid };
        for t in TurnKind::ALL {
            prop_assert_eq!(
                classify_turn(kind, x, y, t),
                classify_turn(kind, x + 4, y - 6, t)
            );
        }
        for wire in [Dir::East, Dir::West] {
            for stub in [Dir::North, Dir::South] {
                let t = TurnKind::from_arms(wire, stub).unwrap();
                if classify_turn(kind, x, y, t) != TurnClass::Forbidden {
                    prop_assert!(stub_turn_ok(kind, x, y, wire, stub));
                }
            }
        }
    }
}
