//! Observability-layer tests: the golden event sequence a staged run
//! must emit, counter/stat agreement between sinks, span-timing sanity,
//! and the guarantee that attaching an observer never perturbs routing.

use proptest::prelude::*;

use sadp_dvi::grid::write_solution;
use sadp_dvi::prelude::*;

fn spec() -> BenchSpec {
    BenchSpec::paper_suite()[0].scaled(0.03)
}

/// A tiny, fully deterministic circuit: the golden tests pin exact
/// event sequences on it, so it must stay fixed.
fn small_case() -> (RoutingGrid, Netlist) {
    let grid = RoutingGrid::three_layer(24, 24);
    let mut nl = Netlist::new();
    nl.push(Net::new("a", vec![Pin::new(3, 3), Pin::new(19, 3)]));
    nl.push(Net::new("b", vec![Pin::new(3, 7), Pin::new(19, 11)]));
    nl.push(Net::new(
        "c",
        vec![Pin::new(7, 15), Pin::new(15, 5), Pin::new(11, 19)],
    ));
    nl.push(Net::new("d", vec![Pin::new(5, 11), Pin::new(17, 17)]));
    (grid, nl)
}

// ---------------------------------------------------------------------------
// Golden event sequence
// ---------------------------------------------------------------------------

#[test]
fn full_arm_emits_the_golden_phase_sequence() {
    let (grid, nl) = small_case();
    let mut log = EventLog::new();
    let out = RoutingSession::new(&grid, &nl, RouterConfig::full(SadpKind::Sim)).run_with(&mut log);
    assert!(out.routed_all && out.congestion_free && out.colorable);
    assert!(log.balanced(), "every phase_start has a matching phase_end");
    assert_eq!(
        log.phase_sequence(),
        vec![
            Phase::InitialRouting,
            Phase::CongestionNegotiation,
            Phase::TplViolationRemoval,
            Phase::ColoringFix,
            Phase::Audit,
        ],
    );
}

#[test]
fn baseline_arm_emits_no_tpl_phase() {
    let (grid, nl) = small_case();
    let mut log = EventLog::new();
    let out =
        RoutingSession::new(&grid, &nl, RouterConfig::baseline(SadpKind::Sim)).run_with(&mut log);
    assert!(out.routed_all);
    assert!(log.balanced());
    // Baseline still *reports* colorability (ColoringFix span) but never
    // runs the TPL-violation-removal R&R.
    assert_eq!(
        log.phase_sequence(),
        vec![
            Phase::InitialRouting,
            Phase::CongestionNegotiation,
            Phase::ColoringFix,
            Phase::Audit,
        ],
    );
}

#[test]
fn golden_counter_totals_match_outcome_stats() {
    let (grid, nl) = small_case();
    let mut log = EventLog::new();
    let out = RoutingSession::new(&grid, &nl, RouterConfig::full(SadpKind::Sim)).run_with(&mut log);

    // Counter totals and RnrStats are two views of the same run.
    for (phase, stats) in [
        (Phase::CongestionNegotiation, &out.congestion_stats),
        (Phase::TplViolationRemoval, &out.tpl_stats),
    ] {
        assert_eq!(
            log.total(phase, Counter::Iterations),
            stats.iterations as i64
        );
        assert_eq!(log.total(phase, Counter::Reroutes), stats.reroutes as i64);
        assert_eq!(
            log.total(phase, Counter::RerouteFailures),
            stats.failures as i64
        );
        // Every iteration either reroutes or fails — nothing else.
        assert_eq!(
            log.total(phase, Counter::Iterations),
            log.total(phase, Counter::Reroutes) + log.total(phase, Counter::RerouteFailures)
        );
    }
    // A clean run never leaves failed nets or uncolorable vias behind.
    assert_eq!(log.total(Phase::InitialRouting, Counter::FailedNets), 0);
    assert_eq!(log.total(Phase::Audit, Counter::AuditShorts), 0);
    assert_eq!(log.total(Phase::Audit, Counter::AuditFvpWindows), 0);
}

#[test]
fn golden_sequence_is_reproducible() {
    // Same inputs → byte-identical event streams (no timing leakage in
    // the logical part of the log).
    let (grid, nl) = small_case();
    let run = || {
        let mut log = EventLog::new();
        RoutingSession::new(&grid, &nl, RouterConfig::full(SadpKind::Sid)).run_with(&mut log);
        log.events().to_vec()
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------------------------------------
// JsonReport sink
// ---------------------------------------------------------------------------

#[test]
fn report_spans_cover_all_phases_once() {
    let (grid, nl) = small_case();
    let mut report = JsonReport::new("golden/full");
    let out =
        RoutingSession::new(&grid, &nl, RouterConfig::full(SadpKind::Sim)).run_with(&mut report);
    out.record_into(&mut report);
    for phase in [
        Phase::InitialRouting,
        Phase::CongestionNegotiation,
        Phase::TplViolationRemoval,
        Phase::ColoringFix,
        Phase::Audit,
    ] {
        assert_eq!(report.spans_of(phase).count(), 1, "{phase}");
    }
    assert_eq!(report.flag("routed_all"), Some(true));
    assert_eq!(report.flag("congestion_free"), Some(true));
    assert_eq!(report.metric("routed_nets"), Some(nl.len() as i64));
    // The report serializes and mentions every phase it spans.
    let json = report.to_json();
    for span in report.spans() {
        assert!(json.contains(span.phase.name()), "{}", span.phase);
    }
}

#[test]
fn span_durations_sum_within_total_runtime() {
    // Phase spans nest inside the session's wall clock, so their sum
    // can never exceed `RoutingOutcome::runtime`.
    let netlist = spec().generate(9);
    let grid = spec().grid();
    let mut report = JsonReport::new("timing");
    let out = RoutingSession::new(&grid, &netlist, RouterConfig::full(SadpKind::Sim))
        .run_with(&mut report);
    assert!(
        report.span_total() <= out.runtime,
        "span sum {:?} exceeds runtime {:?}",
        report.span_total(),
        out.runtime
    );
}

#[test]
fn report_and_log_agree_on_counter_totals() {
    let (grid, nl) = small_case();
    let config = RouterConfig::full(SadpKind::Sim);
    let mut log = EventLog::new();
    RoutingSession::new(&grid, &nl, config).run_with(&mut log);
    let mut report = JsonReport::new("agree");
    RoutingSession::new(&grid, &nl, config).run_with(&mut report);
    for phase in Phase::ALL {
        for counter in [
            Counter::Iterations,
            Counter::Reroutes,
            Counter::RerouteFailures,
            Counter::CongestionHits,
            Counter::FvpHits,
            Counter::ColoringAttempts,
            Counter::FailedNets,
        ] {
            assert_eq!(
                report.total(phase, counter),
                log.total(phase, counter),
                "{phase}/{counter}"
            );
        }
    }
}

#[test]
fn dvi_spans_attach_to_the_same_report() {
    let (grid, nl) = small_case();
    let mut report = JsonReport::new("with-dvi");
    let out =
        RoutingSession::new(&grid, &nl, RouterConfig::full(SadpKind::Sim)).run_with(&mut report);
    let problem = DviProblem::build(SadpKind::Sim, &out.solution);
    let dvi = solve_heuristic_observed(&problem, &DviParams::default(), &mut report);
    assert_eq!(report.spans_of(Phase::Dvi).count(), 1);
    assert_eq!(
        report.total(Phase::Dvi, Counter::InsertedVias),
        dvi.inserted_count() as i64
    );
    assert_eq!(
        report.total(Phase::Dvi, Counter::DeadVias),
        dvi.dead_via_count as i64
    );
    assert_eq!(report.total(Phase::Dvi, Counter::UncolorableVias), 0);
}

// ---------------------------------------------------------------------------
// Observers must not perturb routing
// ---------------------------------------------------------------------------

/// Strategy: small random netlists with spaced pins (same shape as
/// tests/properties.rs).
fn arb_netlist(grid: i32) -> impl Strategy<Value = Netlist> {
    proptest::collection::vec((2..grid - 2, 2..grid - 2), 4..14).prop_map(move |raw| {
        let mut pins: Vec<(i32, i32)> = Vec::new();
        for (x, y) in raw {
            if pins
                .iter()
                .all(|&(px, py)| (px - x).abs().max((py - y).abs()) >= 3)
            {
                pins.push((x, y));
            }
        }
        let mut nl = Netlist::new();
        for pair in pins.chunks(2) {
            if let [a, b] = pair {
                nl.push(Net::new(
                    format!("n{}", nl.len()),
                    vec![Pin::new(a.0, a.1), Pin::new(b.0, b.1)],
                ));
            }
        }
        if nl.is_empty() {
            nl.push(Net::new("fallback", vec![Pin::new(2, 2), Pin::new(8, 8)]));
        }
        nl
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Attaching any sink (no-op, event log, JSON report) yields a
    /// byte-identical solution: observation is strictly read-only.
    #[test]
    fn observers_never_change_the_solution(nl in arb_netlist(26), sim in any::<bool>()) {
        let kind = if sim { SadpKind::Sim } else { SadpKind::Sid };
        let grid = RoutingGrid::three_layer(26, 26);
        let config = RouterConfig::full(kind);
        let quiet =
            RoutingSession::new(&grid, &nl, config).run_with(&mut NoopObserver);
        let mut report = JsonReport::new("prop");
        let reported = RoutingSession::new(&grid, &nl, config).run_with(&mut report);
        let mut log = EventLog::new();
        let logged = RoutingSession::new(&grid, &nl, config).run_with(&mut log);
        prop_assert_eq!(quiet.stats, reported.stats);
        let baseline_text = write_solution(&quiet.solution);
        prop_assert_eq!(&baseline_text, &write_solution(&reported.solution));
        prop_assert_eq!(&baseline_text, &write_solution(&logged.solution));
    }

    /// Span durations always sum within the outcome's total runtime,
    /// whatever the netlist and arm.
    #[test]
    fn span_total_bounded_by_runtime(nl in arb_netlist(26), full in any::<bool>()) {
        let grid = RoutingGrid::three_layer(26, 26);
        let config = if full {
            RouterConfig::full(SadpKind::Sim)
        } else {
            RouterConfig::baseline(SadpKind::Sim)
        };
        let mut report = JsonReport::new("prop-timing");
        let out = RoutingSession::new(&grid, &nl, config).run_with(&mut report);
        prop_assert!(report.span_total() <= out.runtime);
    }
}
