//! Determinism contract of the intra-instance sharded R&R scheduler.
//!
//! The sharded scheduler speculates searches in parallel but commits
//! them in the serial order, so the routing outcome must be
//! **byte-identical** to the single-threaded run for any thread count,
//! any region size, and any budget interruption point. These tests pin
//! that contract on a generated paper-suite instance; the committed
//! `BENCH_matrix.json` fingerprints pin it on the full circuit×arm
//! matrix.

use sadp_dvi::prelude::*;

/// A small-but-congested generated instance (the same generator the
/// bench matrix uses).
fn instance() -> (RoutingGrid, Netlist) {
    let spec = BenchSpec::paper_suite()[0].scaled(0.02);
    (spec.grid(), spec.generate(1))
}

fn run_arm(
    grid: &RoutingGrid,
    netlist: &Netlist,
    config: RouterConfig,
    threads: usize,
    params: Option<ShardParams>,
) -> RoutingOutcome {
    sadp_exec::with_threads(threads, || {
        let mut session = RoutingSession::new(grid, netlist, config);
        if let Some(p) = params {
            session.set_shard_params(p);
        }
        session.finish(&mut NoopObserver)
    })
}

fn assert_same_outcome(a: &RoutingOutcome, b: &RoutingOutcome, what: &str) {
    assert_eq!(a.stats, b.stats, "{what}: stats diverged");
    assert_eq!(a.routed_all, b.routed_all, "{what}: routed_all diverged");
    assert_eq!(
        a.congestion_free, b.congestion_free,
        "{what}: congestion_free diverged"
    );
    assert_eq!(a.fvp_free, b.fvp_free, "{what}: fvp_free diverged");
    assert_eq!(a.colorable, b.colorable, "{what}: colorable diverged");
    assert_eq!(
        a.solution.routed_count(),
        b.solution.routed_count(),
        "{what}: route count diverged"
    );
    for (id, route) in a.solution.iter() {
        assert_eq!(
            Some(route),
            b.solution.route(id),
            "{what}: route of {id:?} diverged"
        );
    }
}

#[test]
fn sharded_outcomes_are_identical_across_threads_and_regions() {
    let (grid, netlist) = instance();
    for config in [
        RouterConfig::baseline(SadpKind::Sim),
        RouterConfig::full(SadpKind::Sim),
    ] {
        let serial = run_arm(&grid, &netlist, config, 1, None);
        assert!(serial.routed_all, "fixture must route fully");
        for threads in [2, 4, 8] {
            for region in [4, 16, 64] {
                let params = ShardParams {
                    enabled: true,
                    region,
                    max_wave: 64,
                };
                let sharded = run_arm(&grid, &netlist, config, threads, Some(params));
                assert_same_outcome(
                    &serial,
                    &sharded,
                    &format!("threads={threads} region={region}"),
                );
            }
        }
    }
}

#[test]
fn sharded_counter_totals_match_serial() {
    // The seven routing counters are part of the serial schedule and
    // must match exactly; only the wave meta-counters may differ with
    // the thread count.
    let (grid, netlist) = instance();
    let config = RouterConfig::full(SadpKind::Sim);
    let totals = |threads: usize| {
        sadp_exec::with_threads(threads, || {
            let mut log = EventLog::new();
            let mut session = RoutingSession::new(&grid, &netlist, config);
            session.set_shard_params(ShardParams {
                enabled: true,
                region: 16,
                max_wave: 64,
            });
            session.finish(&mut log);
            [
                Counter::Iterations,
                Counter::Reroutes,
                Counter::RerouteFailures,
                Counter::CongestionHits,
                Counter::CostDelta,
                Counter::FailedNets,
                Counter::BudgetStops,
            ]
            .map(|c| {
                [
                    Phase::InitialRouting,
                    Phase::CongestionNegotiation,
                    Phase::TplViolationRemoval,
                ]
                .map(|p| log.total(p, c))
            })
        })
    };
    assert_eq!(totals(1), totals(4));
}

#[test]
fn budget_interrupted_sharded_run_resumes_to_the_serial_outcome() {
    let (grid, netlist) = instance();
    let config = RouterConfig::full(SadpKind::Sim);
    let serial = run_arm(&grid, &netlist, config, 1, None);

    for threads in [2, 4] {
        let resumed = sadp_exec::with_threads(threads, || {
            let mut session = RoutingSession::new(&grid, &netlist, config);
            session.set_shard_params(ShardParams {
                enabled: true,
                region: 16,
                max_wave: 64,
            });
            // Drip-feed the phases a few iterations at a time; every
            // budget stop lands mid-phase and must roll the in-flight
            // wave back to an exact serial state before resuming.
            let mut slices = 0;
            loop {
                session.set_budget(RouteBudget::unlimited().with_max_phase_iters(3));
                session.ensure_colorable(&mut NoopObserver);
                slices += 1;
                if session.converged() {
                    break;
                }
                assert!(slices < 10_000, "resumption must make progress");
            }
            assert!(slices > 2, "the cap must actually interrupt the run");
            session.set_budget(RouteBudget::unlimited());
            session.finish(&mut NoopObserver)
        });
        assert_same_outcome(&serial, &resumed, &format!("resumed threads={threads}"));
    }
}

#[test]
fn disabling_sharding_still_matches() {
    let (grid, netlist) = instance();
    let config = RouterConfig::full(SadpKind::Sim);
    let serial = run_arm(&grid, &netlist, config, 1, None);
    let disabled = run_arm(
        &grid,
        &netlist,
        config,
        4,
        Some(ShardParams {
            enabled: false,
            region: 16,
            max_wave: 64,
        }),
    );
    assert_same_outcome(&serial, &disabled, "sharding disabled");
}
