//! Four-metal-layer stacks: the paper's Fig. 6(b) shows stacked vias
//! (M2–M4); everything in the suite is layer-count generic, which
//! these tests pin down.

use sadp_dvi::grid::LayerRole;
use sadp_dvi::prelude::*;

fn four_layer(width: i32, height: i32) -> RoutingGrid {
    RoutingGrid::new(
        width,
        height,
        vec![
            LayerRole::PinOnly,
            LayerRole::Routing(Axis::Horizontal),
            LayerRole::Routing(Axis::Vertical),
            LayerRole::Routing(Axis::Horizontal),
        ],
    )
}

fn netlist() -> Netlist {
    let mut nl = Netlist::new();
    nl.push(Net::new("a", vec![Pin::new(4, 4), Pin::new(20, 4)]));
    nl.push(Net::new("b", vec![Pin::new(4, 8), Pin::new(20, 12)]));
    nl.push(Net::new(
        "c",
        vec![Pin::new(8, 16), Pin::new(16, 6), Pin::new(12, 20)],
    ));
    nl.push(Net::new("d", vec![Pin::new(6, 12), Pin::new(18, 18)]));
    nl
}

#[test]
fn four_layer_grid_has_three_via_layers() {
    let g = four_layer(24, 24);
    assert_eq!(g.layer_count(), 4);
    assert_eq!(g.via_layer_count(), 3);
    assert_eq!(g.preferred_axis(3), Some(Axis::Horizontal));
}

#[test]
fn routes_and_audits_on_four_layers() {
    for kind in SadpKind::ALL {
        let nl = netlist();
        let out = Router::new(four_layer(24, 24), nl.clone(), RouterConfig::full(kind))
            .try_run(&mut NoopObserver)
            .expect("full flow");
        assert!(out.routed_all, "{kind}");
        assert!(out.congestion_free, "{kind}");
        assert!(out.fvp_free, "{kind}");
        let audit = full_audit(kind, &out.solution, &nl);
        assert!(audit.is_clean(), "{kind}: {audit:?}");
    }
}

#[test]
fn dvi_handles_stacked_vias() {
    let nl = netlist();
    let out = Router::new(four_layer(24, 24), nl, RouterConfig::full(SadpKind::Sim))
        .try_run(&mut NoopObserver)
        .expect("full flow");
    let problem = DviProblem::build(SadpKind::Sim, &out.solution);
    // Vias may exist on via layers 0, 1 and 2.
    let layers = problem.via_layers();
    assert!(layers.contains(&0));
    let dvi = solve_heuristic(&problem, &DviParams::default());
    assert_eq!(dvi.uncolorable_count, 0);
    assert_eq!(
        dvi.inserted_count() + dvi.dead_via_count,
        problem.via_count()
    );
    // Candidate via layers match their single via's layer.
    for &c in &dvi.inserted {
        let cand = &problem.candidates()[c as usize];
        let pv = &problem.vias()[cand.via_idx as usize];
        assert_eq!(cand.via_layer, pv.via.below);
    }
}

#[test]
fn m3_wires_can_stack_between_m2_and_m4() {
    // A net whose best route climbs to M4 (horizontal express lane)
    // still verifies: force it by congesting M2.
    let mut nl = Netlist::new();
    for k in 0..8 {
        nl.push(Net::new(
            format!("h{k}"),
            vec![Pin::new(3, 4 + 2 * k), Pin::new(21, 4 + 2 * k)],
        ));
    }
    let out = Router::new(
        four_layer(25, 25),
        nl.clone(),
        RouterConfig::full(SadpKind::Sim),
    )
    .try_run(&mut NoopObserver)
    .expect("full flow");
    assert!(out.routed_all && out.congestion_free);
    let audit = full_audit(SadpKind::Sim, &out.solution, &nl);
    assert!(audit.is_clean(), "{audit:?}");
}
