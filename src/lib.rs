//! # sadp-dvi
//!
//! Umbrella crate for the reproduction of *"Self-Aligned Double
//! Patterning-Aware Detailed Routing with Double Via Insertion and Via
//! Manufacturability Consideration"* (Ding, Chu, Mak — DAC 2016).
//!
//! Re-exports every workspace crate under one roof. See the individual
//! crates for the detailed APIs:
//!
//! * [`grid`] — routing grid, netlists, routed-solution model.
//! * [`sadp`] — SADP color pre-assignment, turn legality, mask synthesis.
//! * [`tpl`] — via-layer TPL decomposition, FVP classifier, coloring.
//! * [`ilp`] — 0-1 ILP branch-and-bound solver (Gurobi substitute).
//! * [`dvi`] — double-via-insertion candidates, ILP model, heuristic.
//! * [`router`] — the SADP-aware detailed router itself.
//! * `bench` ([`benchgen`]) — synthetic benchmark generator.
//! * [`trace`] ([`sadp_trace`]) — phase-level observability (observer
//!   trait, no-op and JSON-report sinks).
//!
//! Most programs only need the [`prelude`]:
//!
//! ```
//! use sadp_dvi::prelude::*;
//!
//! let spec = BenchSpec::paper_suite()[0].scaled(0.05);
//! let netlist = spec.generate(1);
//! let grid = spec.grid();
//! let config = RouterConfig::builder(SadpKind::Sim)
//!     .dvi(true)
//!     .tpl(true)
//!     .build()
//!     .expect("valid config");
//! let outcome = RoutingSession::new(&grid, &netlist, config).run_with(&mut NoopObserver);
//! assert!(outcome.routed_all);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub use benchgen as bench;
pub use bilp as ilp;
pub use dvi;
pub use sadp_decomp as sadp;
pub use sadp_grid as grid;
pub use sadp_router as router;
pub use sadp_service as service;
pub use sadp_trace as trace;
pub use tpl_decomp as tpl;

/// The types and functions nearly every user of the workspace touches:
/// grid/netlist modeling, the staged router, the DVI solvers, the
/// benchmark generator, the observability sinks, and the routing
/// service job API.
pub mod prelude {
    pub use benchgen::BenchSpec;
    pub use dvi::{
        solve_heuristic, solve_heuristic_improved, solve_heuristic_improved_observed,
        solve_heuristic_observed, solve_ilp, solve_ilp_lazy, solve_ilp_lazy_observed,
        solve_ilp_observed, solve_resilient, DviOutcome, DviParams, DviProblem, DviSolver,
        LazyIlpOptions, ResilientDviOptions, ResilientDviResult,
    };
    pub use sadp_grid::{
        Axis, DeltaOp, LayoutDelta, Net, NetId, Netlist, Pin, RoutedNet, RoutingGrid,
        RoutingSolution, SadpKind, Via, WireEdge,
    };
    pub use sadp_router::{
        full_audit, full_audit_observed, mask_audit, ConfigError, CostParams, FullAudit,
        RouteBudget, RouteError, Router, RouterConfig, RoutingOutcome, RoutingSession, ShardParams,
        Termination,
    };
    pub use sadp_service::{
        outcome_fingerprint, Arm, JobBudget, JobEvent, JobId, JobOutcome, JobSource, Priority,
        RouteRequest, RouteResponse, RouteSummary, Service, ServiceConfig,
    };
    pub use sadp_trace::{
        merge_reports, Counter, EventLog, JsonReport, NoopObserver, Phase, RouteObserver,
    };
}
