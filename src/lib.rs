//! # sadp-dvi
//!
//! Umbrella crate for the reproduction of *"Self-Aligned Double
//! Patterning-Aware Detailed Routing with Double Via Insertion and Via
//! Manufacturability Consideration"* (Ding, Chu, Mak — DAC 2016).
//!
//! Re-exports every workspace crate under one roof. See the individual
//! crates for the detailed APIs:
//!
//! * [`grid`] — routing grid, netlists, routed-solution model.
//! * [`sadp`] — SADP color pre-assignment, turn legality, mask synthesis.
//! * [`tpl`] — via-layer TPL decomposition, FVP classifier, coloring.
//! * [`ilp`] — 0-1 ILP branch-and-bound solver (Gurobi substitute).
//! * [`dvi`] — double-via-insertion candidates, ILP model, heuristic.
//! * [`router`] — the SADP-aware detailed router itself.
//! * `bench` ([`benchgen`]) — synthetic benchmark generator.

#![warn(missing_docs)]

pub use benchgen as bench;
pub use bilp as ilp;
pub use dvi;
pub use sadp_decomp as sadp;
pub use sadp_grid as grid;
pub use sadp_router as router;
pub use tpl_decomp as tpl;
